package store

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"titanre/internal/console"
	"titanre/internal/topology"
	"titanre/internal/xid"
)

// Store manages an ordered sequence of sealed segments in one
// directory (seg-000000.seg, seg-000001.seg, ...). Sealing appends;
// segments are never rewritten, so readers and the sealing writer only
// contend on the short in-memory registration.
type Store struct {
	mu        sync.RWMutex
	dir       string
	segs      []*Segment
	next      int // next segment file number
	diskBytes int64
	count     int
	mapped    bool // open segments via mmap; seals re-map after commit
}

// OpenOptions selects how OpenDir brings a store up.
type OpenOptions struct {
	// Recover quarantines corrupt segments instead of aborting the open
	// (the OpenRecover behaviour).
	Recover bool
	// Mapped backs sealed-segment reads with read-only file mappings
	// where the platform supports it (heap fallback elsewhere): columns
	// alias the page cache, so a large store scans at disk bandwidth
	// with near-zero resident heap. Segments sealed through a mapped
	// store are re-opened mapped after their atomic commit.
	Mapped bool
}

// QuarantineDir is the subdirectory corrupt segment files are moved
// into by OpenRecover, preserving the evidence for offline forensics
// without letting it block a restart.
const QuarantineDir = "quarantine"

// Recovery reports what OpenRecover had to do to bring a store up.
type Recovery struct {
	// Quarantined lists the segment file names (not paths) moved into
	// the quarantine subdirectory because they failed validation.
	Quarantined []string
	// QuarantinedBytes is their total on-disk size.
	QuarantinedBytes int64
	// OrphansRemoved counts .seg-* temp files — the debris of a crash
	// mid-commit, before the atomic rename — deleted during the open.
	OrphansRemoved int
}

// Open opens (or initializes) a segment store in dir. A missing
// directory is an empty store; it is created on first seal. Existing
// segment files are read, digest-validated, and registered in
// file-name order — the order they were sealed. Orphaned .seg-* temp
// files left by a crash mid-commit are removed. Any segment that fails
// validation aborts the open; use OpenRecover to quarantine it and
// start degraded instead.
func Open(dir string) (*Store, error) {
	st, _, err := OpenDir(dir, OpenOptions{})
	return st, err
}

// OpenRecover opens a segment store the way a restart after a crash
// must: orphaned temp files are removed, and a segment file that fails
// validation (ErrCorrupt — torn write, bit flip, truncation) is moved
// into dir/quarantine and counted instead of aborting the open. The
// surviving segments load normally; the Recovery report carries the
// exact quarantine accounting the caller surfaces. I/O errors that are
// not corruption (permissions, a vanished directory) still fail.
func OpenRecover(dir string) (*Store, Recovery, error) {
	return OpenDir(dir, OpenOptions{Recover: true})
}

// OpenDir opens a segment store with explicit options; Open and
// OpenRecover are shorthands for the heap-backed variants.
func OpenDir(dir string, opts OpenOptions) (*Store, Recovery, error) {
	st := &Store{dir: dir, mapped: opts.Mapped}
	var rec Recovery
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return st, rec, nil
	}
	if err != nil {
		return nil, rec, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".seg-") {
			// A temp file from an interrupted commit: its rename never
			// happened, so no reader ever saw it — safe to delete.
			if err := os.Remove(filepath.Join(dir, name)); err == nil {
				rec.OrphansRemoved++
			}
			continue
		}
		if filepath.Ext(name) == ".seg" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, name)
		// Advance the numbering past every file seen — including ones
		// about to be quarantined — so a later seal never reuses the
		// name of a file now sitting in quarantine.
		var num int
		if _, err := fmt.Sscanf(name, "seg-%d.seg", &num); err == nil && num >= st.next {
			st.next = num + 1
		}
		seg, err := st.readSegment(path)
		if err != nil {
			if opts.Recover && errors.Is(err, ErrCorrupt) {
				size, qerr := quarantine(dir, name)
				if qerr != nil {
					return nil, rec, fmt.Errorf("store: quarantining %s: %w", path, qerr)
				}
				rec.Quarantined = append(rec.Quarantined, name)
				rec.QuarantinedBytes += size
				continue
			}
			return nil, rec, err
		}
		info, err := os.Stat(path)
		if err != nil {
			return nil, rec, fmt.Errorf("store: opening %s: %w", dir, err)
		}
		st.segs = append(st.segs, seg)
		st.diskBytes += info.Size()
		st.count += seg.Len()
	}
	return st, rec, nil
}

// quarantine moves one corrupt segment file into dir/quarantine,
// returning its size. The move is a same-filesystem rename, so the
// evidence bytes are preserved exactly.
func quarantine(dir, name string) (int64, error) {
	src := filepath.Join(dir, name)
	info, err := os.Stat(src)
	if err != nil {
		return 0, err
	}
	qdir := filepath.Join(dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return 0, err
	}
	if err := os.Rename(src, filepath.Join(qdir, name)); err != nil {
		return 0, err
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// readSegment loads one segment file on the store's configured path —
// mapped when the store is, heap otherwise.
func (st *Store) readSegment(path string) (*Segment, error) {
	if st.mapped {
		return MapSegmentFile(path)
	}
	return ReadSegmentFile(path)
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Close releases every file mapping the store holds. Segments must not
// be used afterwards; heap-backed stores ignore Close.
func (st *Store) Close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, seg := range st.segs {
		seg.Close()
	}
}

// MappedBytes reports the total size of live file mappings (0 when the
// store reads on the heap path).
func (st *Store) MappedBytes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var n int64
	for _, seg := range st.segs {
		n += seg.MappedBytes()
	}
	return n
}

// Prepared is a segment durably committed to disk but not yet visible
// to readers; Publish registers it. The split lets a caller do the slow
// half (build, write, fsync, rename) outside any reader-facing lock and
// then make the segment visible in the same critical section that
// retires the events it covers — readers never observe an event both
// sealed and retained. A crash between Prepare and Publish leaves a
// valid, loaded-but-unfloored segment file, the same window the sealed
// floor arithmetic already reconciles at warm start.
type Prepared struct {
	seg  *Segment
	size int64
}

// Segment returns the prepared segment (already readable, not yet
// registered).
func (p *Prepared) Segment() *Segment { return p.seg }

// Prepare builds a segment from events (in the order given) and commits
// it to disk atomically, without registering it. On error no visible
// file exists (WriteFile's temp-rename discipline), so a retry cannot
// duplicate events. On a mapped store the committed file is re-opened
// mapped, so the registered segment aliases the page cache rather than
// holding the build's heap columns.
func (st *Store) Prepare(events []console.Event) (*Prepared, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("store: sealing empty segment")
	}
	b := NewBuilder(len(events))
	for _, e := range events {
		if err := b.Append(e); err != nil {
			return nil, err
		}
	}
	seg, err := b.Seal()
	if err != nil {
		return nil, err
	}
	return st.PrepareSegment(seg)
}

// PrepareSegment commits an already-built segment to disk without
// registering it.
func (st *Store) PrepareSegment(seg *Segment) (*Prepared, error) {
	st.mu.Lock()
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		st.mu.Unlock()
		return nil, fmt.Errorf("store: creating %s: %w", st.dir, err)
	}
	num := st.next
	st.next++ // a failed Prepare burns the number; numbering may gap
	st.mu.Unlock()
	path := filepath.Join(st.dir, fmt.Sprintf("seg-%06d.seg", num))
	if err := seg.WriteFile(path); err != nil {
		return nil, err
	}
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("store: sealing: %w", err)
	}
	if st.mapped {
		if mseg, err := MapSegmentFile(path); err == nil {
			seg = mseg
		}
	}
	return &Prepared{seg: seg, size: info.Size()}, nil
}

// Publish registers a prepared segment, making it visible to readers.
// Pure in-memory bookkeeping: it cannot fail, so a caller may publish
// inside a critical section that must not abort halfway.
func (st *Store) Publish(p *Prepared) *Segment {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.segs = append(st.segs, p.seg)
	st.diskBytes += p.size
	st.count += p.seg.Len()
	return p.seg
}

// Seal builds a segment from events (in the order given), writes it to
// disk, and registers it. Returns the sealed segment.
func (st *Store) Seal(events []console.Event) (*Segment, error) {
	p, err := st.Prepare(events)
	if err != nil {
		return nil, err
	}
	return st.Publish(p), nil
}

// SealSegment writes an already-built segment to disk and registers it.
func (st *Store) SealSegment(seg *Segment) error {
	p, err := st.PrepareSegment(seg)
	if err != nil {
		return err
	}
	st.Publish(p)
	return nil
}

// Segments returns a snapshot of the registered segments in seal order.
func (st *Store) Segments() []*Segment {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]*Segment, len(st.segs))
	copy(out, st.segs)
	return out
}

// EventCount reports the total events across all segments.
func (st *Store) EventCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.count
}

// SegmentCount reports the number of sealed segments.
func (st *Store) SegmentCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.segs)
}

// DiskBytes reports the total on-disk size of sealed segment files.
func (st *Store) DiskBytes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.diskBytes
}

// MemBytes estimates the resident footprint of all loaded segments.
func (st *Store) MemBytes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var n int64
	for _, seg := range st.segs {
		n += seg.MemBytes()
	}
	return n
}

// Events materializes every stored event in segment order, allocating
// the result exactly once.
func (st *Store) Events() []console.Event {
	segs := st.Segments()
	total := 0
	for _, seg := range segs {
		total += seg.Len()
	}
	out := make([]console.Event, 0, total)
	for _, seg := range segs {
		out = seg.AppendEvents(out)
	}
	return out
}

// ScanCode returns every event carrying code, in segment order,
// allocating the result exactly once via bitmap popcounts.
func (st *Store) ScanCode(code xid.Code) []console.Event {
	segs := st.Segments()
	total := 0
	for _, seg := range segs {
		total += seg.CountCode(code)
	}
	if total == 0 {
		return nil
	}
	out := make([]console.Event, 0, total)
	for _, seg := range segs {
		out = seg.ScanCode(code, out)
	}
	return out
}

// ScanCodeRange returns every event carrying code within [since,
// until] in segment order, pruning segments by their min/max time and
// walking only bitmap-marked positions inside survivors.
func (st *Store) ScanCodeRange(code xid.Code, since, until time.Time) []console.Event {
	var out []console.Event
	for _, seg := range st.Segments() {
		if !seg.Overlaps(since, until) {
			continue
		}
		out = seg.ScanCodeRange(code, since, until, out)
	}
	return out
}

// CountCode reports the fleet-wide total of events carrying code, by
// per-segment bitmap popcounts.
func (st *Store) CountCode(code xid.Code) int {
	total := 0
	for _, seg := range st.Segments() {
		total += seg.CountCode(code)
	}
	return total
}

// ScanNode returns events on node within [since, until], pruning
// segments by their min/max time.
func (st *Store) ScanNode(node topology.NodeID, since, until time.Time) []console.Event {
	var out []console.Event
	for _, seg := range st.Segments() {
		if !seg.Overlaps(since, until) {
			continue
		}
		out = seg.ScanNode(node, since, until, out)
	}
	return out
}

// Codes returns the sorted union of event codes across all segments.
func (st *Store) Codes() []xid.Code {
	seen := make(map[xid.Code]bool)
	for _, seg := range st.Segments() {
		for _, c := range seg.Codes() {
			seen[c] = true
		}
	}
	out := make([]xid.Code, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Digest hashes the console rendering (AppendRaw + newline) of every
// stored event in segment order — the round-trip identity check: a
// store sealed from a parsed log digests to the same value as the log
// bytes themselves.
func (st *Store) Digest() [sha256.Size]byte {
	h := sha256.New()
	var buf []byte
	for _, seg := range st.Segments() {
		for i := 0; i < seg.Len(); i++ {
			buf = seg.EventAt(i).AppendRaw(buf[:0])
			buf = append(buf, '\n')
			h.Write(buf)
		}
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}
