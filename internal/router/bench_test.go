package router

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"titanre/internal/serve"
)

// TestClusterBenchHarness measures cluster ingest scaling: the same
// corpus replayed losslessly into one titand, then through titanrouter
// into a 4-replica fleet. It extends the BENCH_SERVE_OUT document the
// ingest harness wrote with cluster_lines_per_sec and cluster_scaling
// (cluster over single-daemon throughput). scripts/bench.sh runs it
// after the ingest benchmark and gates scaling >= 2.5x on machines
// with >= 4 cores; plain `go test` skips it.
func TestClusterBenchHarness(t *testing.T) {
	out := os.Getenv("BENCH_SERVE_OUT")
	if out == "" {
		t.Skip("set BENCH_SERVE_OUT=path.json to run the cluster benchmark")
	}

	log := encodeLog(t, clusterSim())
	corpus := make([]byte, 0, len(log)*6) // ~200k lines, matching the ingest harness
	for i := 0; i < 6; i++ {
		corpus = append(corpus, log...)
	}

	benchCfg := func() serve.Config {
		cfg := serve.DefaultConfig()
		cfg.RetainEvents = false // throughput is the subject, not snapshots
		return cfg
	}
	shutdown := func(s *serve.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}

	// Baseline: one daemon, lossless, as fast as it admits.
	single := serve.NewServer(benchCfg())
	singleURL := startReplica(t, single, "127.0.0.1:0")
	singleStats := stream(t, singleURL, corpus, serve.StreamOptions{
		BatchLines: 1024, Concurrency: 4, Retry429: true,
	})
	shutdown(single)
	singleRate := singleStats.LinesPerSecond()
	t.Logf("single daemon: %v", singleStats)

	// Cluster: 4 replicas behind the router, same lossless replay. The
	// QoS share is lifted out of the way — capacity, not isolation, is
	// being measured.
	const n = 4
	replicas := make([]*serve.Server, n)
	urls := make([]string, n)
	for i := range replicas {
		replicas[i] = serve.NewServer(benchCfg())
		urls[i] = startReplica(t, replicas[i], "127.0.0.1:0")
	}
	rt, err := New(Config{Replicas: urls, SourceShareLines: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	routerURL := startRouter(t, rt)
	clusterStats := stream(t, routerURL, corpus, serve.StreamOptions{
		BatchLines: 1024, Concurrency: 4 * n, Retry429: true, Source: "bench",
	})
	for _, r := range replicas {
		shutdown(r)
	}
	clusterRate := clusterStats.LinesPerSecond()
	scaling := 0.0
	if singleRate > 0 {
		scaling = clusterRate / singleRate
	}
	t.Logf("cluster (%d replicas): %v", n, clusterStats)
	t.Logf("scaling: %.2fx (single %.0f, cluster %.0f lines/s)", scaling, singleRate, clusterRate)

	if clusterStats.LinesShed != 0 || clusterStats.LinesFailed != 0 {
		t.Errorf("lossless cluster replay shed %d / failed %d lines",
			clusterStats.LinesShed, clusterStats.LinesFailed)
	}

	// Extend the ingest harness's document in place.
	doc := map[string]any{}
	if data, err := os.ReadFile(out); err == nil && len(bytes.TrimSpace(data)) > 0 {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("parsing existing %s: %v", out, err)
		}
	}
	doc["gomaxprocs"] = runtime.GOMAXPROCS(0)
	doc["num_cpu"] = runtime.NumCPU()
	doc["cluster_replicas"] = n
	doc["cluster_single_lines_per_sec"] = singleRate
	doc["cluster_lines_per_sec"] = clusterRate
	doc["cluster_scaling"] = scaling
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
