package router

import (
	"testing"

	"titanre/internal/topology"
)

func replicaNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "http://replica" + string(rune('a'+i)) + ":9123"
	}
	return names
}

// TestOwnersOrderIndependent: placement depends on the replica name
// set, not the order the names were listed in.
func TestOwnersOrderIndependent(t *testing.T) {
	names := replicaNames(4)
	fwd := buildOwners(names)
	rev := buildOwners([]string{names[3], names[2], names[1], names[0]})
	for node := range fwd {
		if names[fwd[node]] != names[3-rev[node]] {
			t.Fatalf("node %d: owner %q listed forward, %q listed reversed",
				node, names[fwd[node]], names[3-rev[node]])
		}
	}
}

// TestOwnersMinimalMovement: removing one replica relocates only the
// nodes it owned — every other node keeps its home.
func TestOwnersMinimalMovement(t *testing.T) {
	names := replicaNames(4)
	before := buildOwners(names)
	after := buildOwners(names[:3])
	moved := 0
	for node := range before {
		if before[node] == 3 {
			moved++
			continue
		}
		if names[after[node]] != names[before[node]] {
			t.Fatalf("node %d moved from %q to %q though its replica stayed",
				node, names[before[node]], names[after[node]])
		}
	}
	if moved == 0 {
		t.Fatal("removed replica owned nothing; the test checked nothing")
	}
}

// TestOwnersBalanced: rendezvous hashing spreads the node space close
// to evenly — no replica is starved or doubled up.
func TestOwnersBalanced(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		counts := make([]int, n)
		for _, o := range buildOwners(replicaNames(n)) {
			counts[o]++
		}
		ideal := topology.TotalNodes / n
		for ri, c := range counts {
			if c < ideal/2 || c > ideal*2 {
				t.Fatalf("%d replicas: replica %d owns %d nodes, ideal %d — out of 2x balance (%v)",
					n, ri, c, ideal, counts)
			}
		}
	}
}
