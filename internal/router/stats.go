package router

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Router observability: /stats (JSON), /metrics (Prometheus text) and
// /healthz. The per-source accounting is the QoS contract made
// auditable — for every source, offered == accepted + shed + failed in
// lines and in batches, exactly, which the source-isolation test
// checks against the load generator's own books.

// SourceStats is one feed's exact account at the router.
type SourceStats struct {
	OfferedBatches  uint64 `json:"offered_batches"`
	AcceptedBatches uint64 `json:"accepted_batches"`
	ShedBatches     uint64 `json:"shed_batches"`
	FailedBatches   uint64 `json:"failed_batches"`
	OfferedLines    uint64 `json:"offered_lines"`
	AcceptedLines   uint64 `json:"accepted_lines"`
	ShedLines       uint64 `json:"shed_lines"`
	FailedLines     uint64 `json:"failed_lines"`
	InflightLines   int64  `json:"inflight_lines"`
}

// Stats is the GET /stats document.
type Stats struct {
	UptimeSeconds    float64                `json:"uptime_seconds"`
	Replicas         []string               `json:"replicas"`
	SourceShareLines int                    `json:"source_share_lines"`
	BatchesOffered   uint64                 `json:"batches_offered"`
	BatchesAccepted  uint64                 `json:"batches_accepted"`
	BatchesShed      uint64                 `json:"batches_shed"`
	BatchesFailed    uint64                 `json:"batches_failed"`
	BatchesRejected  uint64                 `json:"batches_rejected"`
	LinesOffered     uint64                 `json:"lines_offered"`
	LinesDelivered   uint64                 `json:"lines_delivered"`
	LinesShed        uint64                 `json:"lines_shed"`
	LinesFailed      uint64                 `json:"lines_failed"`
	SubBatches       uint64                 `json:"sub_batches"`
	DeliverRetries   uint64                 `json:"deliver_retries"`
	ReadFanouts      uint64                 `json:"read_fanouts"`
	ReadErrors       uint64                 `json:"read_errors"`
	MergedAlerts     uint64                 `json:"merged_alerts"`
	DegradedAlerts   uint64                 `json:"degraded_alerts"`
	MergedQueries    uint64                 `json:"merged_queries"`
	Sources          map[string]SourceStats `json:"sources,omitempty"`
}

// StatsNow snapshots the router counters.
func (rt *Router) StatsNow() Stats {
	m := &rt.metrics
	return Stats{
		UptimeSeconds:    time.Since(m.start).Seconds(),
		Replicas:         rt.cfg.Replicas,
		SourceShareLines: rt.cfg.SourceShareLines,
		BatchesOffered:   m.batchesOffered.Load(),
		BatchesAccepted:  m.batchesAccepted.Load(),
		BatchesShed:      m.batchesShed.Load(),
		BatchesFailed:    m.batchesFailed.Load(),
		BatchesRejected:  m.batchesRejected.Load(),
		LinesOffered:     m.linesOffered.Load(),
		LinesDelivered:   m.linesDelivered.Load(),
		LinesShed:        m.linesShed.Load(),
		LinesFailed:      m.linesFailed.Load(),
		SubBatches:       m.subBatches.Load(),
		DeliverRetries:   m.deliverRetries.Load(),
		ReadFanouts:      m.readFanouts.Load(),
		ReadErrors:       m.readErrors.Load(),
		MergedAlerts:     m.mergedAlerts.Load(),
		DegradedAlerts:   m.degradedAlerts.Load(),
		MergedQueries:    m.mergedQueries.Load(),
		Sources:          rt.sourceStats(),
	}
}

// sourceStats snapshots every source's account (nil when none seen).
func (rt *Router) sourceStats() map[string]SourceStats {
	rt.srcMu.Lock()
	defer rt.srcMu.Unlock()
	if len(rt.sources) == 0 {
		return nil
	}
	out := make(map[string]SourceStats, len(rt.sources))
	for name, src := range rt.sources {
		out[name] = SourceStats{
			OfferedBatches:  src.offeredBatches.Load(),
			AcceptedBatches: src.acceptedBatches.Load(),
			ShedBatches:     src.shedBatches.Load(),
			FailedBatches:   src.failedBatches.Load(),
			OfferedLines:    src.offeredLines.Load(),
			AcceptedLines:   src.acceptedLines.Load(),
			ShedLines:       src.shedLines.Load(),
			FailedLines:     src.failedLines.Load(),
			InflightLines:   src.inflight.Load(),
		}
	}
	return out
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, rt.StatsNow())
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// handleMetrics renders the counters in Prometheus text exposition
// format, mirroring titand's /metrics idiom.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := rt.StatsNow()
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("titanrouter_uptime_seconds", "Seconds since the router started.", st.UptimeSeconds)
	gauge("titanrouter_replicas", "Configured replica count.", float64(len(st.Replicas)))
	counter("titanrouter_batches_offered_total", "Client batches offered to /ingest.", st.BatchesOffered)
	counter("titanrouter_batches_accepted_total", "Batches fully delivered to replicas.", st.BatchesAccepted)
	counter("titanrouter_batches_shed_total", "Batches shed by per-source QoS.", st.BatchesShed)
	counter("titanrouter_batches_failed_total", "Batches with undelivered lines.", st.BatchesFailed)
	counter("titanrouter_batches_rejected_total", "Malformed or oversized batches.", st.BatchesRejected)
	counter("titanrouter_lines_offered_total", "Lines offered to /ingest.", st.LinesOffered)
	counter("titanrouter_lines_delivered_total", "Lines delivered to replicas.", st.LinesDelivered)
	counter("titanrouter_lines_shed_total", "Lines shed by per-source QoS.", st.LinesShed)
	counter("titanrouter_lines_failed_total", "Lines undelivered within the timeout.", st.LinesFailed)
	counter("titanrouter_sub_batches_total", "Per-replica sub-batches sent.", st.SubBatches)
	counter("titanrouter_deliver_retries_total", "Delivery retries against 429/503/connection errors.", st.DeliverRetries)
	counter("titanrouter_read_fanouts_total", "Read-side fan-outs.", st.ReadFanouts)
	counter("titanrouter_read_errors_total", "Read-side fan-out failures.", st.ReadErrors)
	counter("titanrouter_merged_alerts_total", "Merged /alerts responses.", st.MergedAlerts)
	counter("titanrouter_degraded_alerts_total", "Merged /alerts responses marked degraded.", st.DegradedAlerts)
	counter("titanrouter_merged_queries_total", "Merged /rollup, /top and /query responses.", st.MergedQueries)
	if len(st.Sources) > 0 {
		names := make([]string, 0, len(st.Sources))
		for name := range st.Sources {
			names = append(names, name)
		}
		sort.Strings(names)
		srcCounter := func(name, help string, value func(SourceStats) uint64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, src := range names {
				fmt.Fprintf(&b, "%s{source=%q} %d\n", name, src, value(st.Sources[src]))
			}
		}
		srcCounter("titanrouter_source_lines_offered_total", "Lines offered per source.",
			func(s SourceStats) uint64 { return s.OfferedLines })
		srcCounter("titanrouter_source_lines_accepted_total", "Lines delivered per source.",
			func(s SourceStats) uint64 { return s.AcceptedLines })
		srcCounter("titanrouter_source_lines_shed_total", "Lines shed per source by QoS.",
			func(s SourceStats) uint64 { return s.ShedLines })
		srcCounter("titanrouter_source_lines_failed_total", "Lines undelivered per source.",
			func(s SourceStats) uint64 { return s.FailedLines })
		srcCounter("titanrouter_source_batches_offered_total", "Batches offered per source.",
			func(s SourceStats) uint64 { return s.OfferedBatches })
		srcCounter("titanrouter_source_batches_shed_total", "Batches shed per source by QoS.",
			func(s SourceStats) uint64 { return s.ShedBatches })
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
