// Package router is titanrouter's engine: a QoS-aware ingest router
// and deterministic read-side merger fronting N titand replicas — the
// fleet-scale face of the pipeline.
//
// A single titand tops out around half a million lines a second; a
// Titan-sized fleet (18,688 GPU nodes and their chatter) needs the node
// space sharded. The router consistent-hashes the interned topology
// table across the replicas (rendezvous hashing, so adding a replica
// only moves the nodes it wins), splits every /ingest batch
// newline-aligned by owning replica on the zero-allocation cname fast
// path, and fans the sub-batches out over pooled connections with
// jittered retry on replica 429/503 — a draining or restarting replica
// looks like latency, not loss.
//
// Admission control is per source, not global: each batch carries an
// X-Titan-Source feed identity, and the router bounds every source's
// in-flight line share. A flooding feed sheds against its own bound
// with exact accounting while well-behaved feeds keep flowing — the
// multi-tenant answer to titand's single-tenant 429.
//
// On the read side the router proves the standing gate at cluster
// scope: /rollup, /top and /query fan out as raw partial accumulators
// and merge with the store's commutative/associative kernels (replicas
// and segments are the same merge problem), and /alerts replays the
// replicas' merged evidence feeds through a fresh detector engine —
// every merged response byte-identical to an uninterrupted single
// daemon fed the same stream.
package router

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"titanre/internal/console"
	"titanre/internal/serve"
)

// Config tunes the router.
type Config struct {
	// Replicas are the titand base URLs (e.g. "http://127.0.0.1:9123").
	// The node space is rendezvous-hashed across them; order does not
	// matter. At most 256 replicas.
	Replicas []string
	// SourceShareLines bounds one source's in-flight lines (default
	// 8192). A batch is shed when admitting it would push its source
	// over the share — except when the source has nothing in flight, so
	// one oversized batch can never livelock a feed.
	SourceShareLines int
	// MaxBodyBytes caps one /ingest body (default 8 MiB, matching titand).
	MaxBodyBytes int64
	// DeliverTimeout bounds one batch's fan-out end to end, including
	// retries against draining replicas (default 30 s).
	DeliverTimeout time.Duration
	// ReadTimeout bounds one read-side fan-out (default 30 s).
	ReadTimeout time.Duration
}

// Router is one titanrouter instance.
type Router struct {
	cfg    Config
	client *http.Client
	// owners maps every topology.NodeID to its owning replica index —
	// one array load per ingested line.
	owners []uint8
	// spill round-robins lines without a parseable cname; their
	// placement is load balancing, not correctness (no cname ⇒ no
	// event ⇒ no per-node state anywhere).
	spill atomic.Uint64

	// seqMu orders global line-sequence assignment; sequences are dense
	// over accepted batches, which is what makes the merged alert feed
	// replay in exact single-daemon stream order.
	seqMu   sync.Mutex
	nextSeq uint64

	srcMu   sync.Mutex
	sources map[string]*source

	metrics routerMetrics

	mux      *http.ServeMux
	listener net.Listener
	httpSrv  *http.Server
	lifeMu   sync.Mutex
}

// source is one feed's QoS state and exact accounting.
type source struct {
	inflight atomic.Int64

	offeredBatches  atomic.Uint64
	acceptedBatches atomic.Uint64
	shedBatches     atomic.Uint64
	failedBatches   atomic.Uint64
	offeredLines    atomic.Uint64
	acceptedLines   atomic.Uint64
	shedLines       atomic.Uint64
	failedLines     atomic.Uint64
}

// routerMetrics are the global counters behind /stats and /metrics.
type routerMetrics struct {
	start time.Time

	batchesOffered  atomic.Uint64
	batchesAccepted atomic.Uint64
	batchesShed     atomic.Uint64
	batchesFailed   atomic.Uint64
	batchesRejected atomic.Uint64
	linesOffered    atomic.Uint64
	linesDelivered  atomic.Uint64
	linesShed       atomic.Uint64
	linesFailed     atomic.Uint64
	subBatches      atomic.Uint64
	deliverRetries  atomic.Uint64
	readFanouts     atomic.Uint64
	readErrors      atomic.Uint64
	mergedAlerts    atomic.Uint64
	mergedQueries   atomic.Uint64
	degradedAlerts  atomic.Uint64
}

// New builds a router over the given replica set.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas")
	}
	if len(cfg.Replicas) > 256 {
		return nil, fmt.Errorf("router: %d replicas (max 256)", len(cfg.Replicas))
	}
	if cfg.SourceShareLines <= 0 {
		cfg.SourceShareLines = 8192
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.DeliverTimeout <= 0 {
		cfg.DeliverTimeout = 30 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	rt := &Router{
		cfg: cfg,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        4 * len(cfg.Replicas),
				MaxIdleConnsPerHost: 8,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		owners:  buildOwners(cfg.Replicas),
		sources: make(map[string]*source),
		metrics: routerMetrics{start: time.Now()},
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /ingest", rt.handleIngest)
	rt.mux.HandleFunc("GET /alerts", rt.handleAlerts)
	rt.mux.HandleFunc("GET /rollup", rt.handleRollup)
	rt.mux.HandleFunc("GET /top", rt.handleTop)
	rt.mux.HandleFunc("GET /query", rt.handleQuery)
	rt.mux.HandleFunc("GET /stats", rt.handleStats)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Serve listens on addr and serves until Shutdown.
func (rt *Router) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("router: %w", err)
	}
	return rt.ServeListener(ln)
}

// ServeListener serves on an existing listener (tests inject one).
func (rt *Router) ServeListener(ln net.Listener) error {
	rt.lifeMu.Lock()
	rt.listener = ln
	rt.httpSrv = &http.Server{Handler: rt.mux, ReadHeaderTimeout: 5 * time.Second}
	srv := rt.httpSrv
	rt.lifeMu.Unlock()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("router: %w", err)
	}
	return nil
}

// Addr returns the bound address, or "" before Serve.
func (rt *Router) Addr() string {
	rt.lifeMu.Lock()
	defer rt.lifeMu.Unlock()
	if rt.listener == nil {
		return ""
	}
	return rt.listener.Addr().String()
}

// Shutdown stops accepting requests; in-flight fan-outs complete.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.lifeMu.Lock()
	srv := rt.httpSrv
	rt.lifeMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// source returns the accounting record for a feed, creating it on
// first sight. An empty header maps to "default".
func (rt *Router) source(name string) (string, *source) {
	if name == "" {
		name = "default"
	}
	rt.srcMu.Lock()
	defer rt.srcMu.Unlock()
	src := rt.sources[name]
	if src == nil {
		src = &source{}
		rt.sources[name] = src
	}
	return name, src
}

// ownerOf routes one line: topology-hashed when it names a node,
// round-robin spill otherwise.
func (rt *Router) ownerOf(line []byte, _ int) int {
	if node, ok := console.LineNode(line); ok {
		return int(rt.owners[node])
	}
	return int(rt.spill.Add(1)-1) % len(rt.cfg.Replicas)
}

// handleIngest admits one batch under the per-source QoS bound, splits
// it by owning replica and fans it out. 202: every line delivered;
// 429: the source is over its share (X-Shed-Lines, exact); 502: a
// replica could not be reached within DeliverTimeout (X-Failed-Lines
// counts the undelivered share; delivered lines stay delivered).
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		rt.metrics.batchesRejected.Add(1)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, "body over limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading body", http.StatusBadRequest)
		return
	}
	if len(body) == 0 {
		rt.metrics.batchesRejected.Add(1)
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	lines := countLines(body)
	srcName, src := rt.source(r.Header.Get(serve.SourceHeader))
	src.offeredBatches.Add(1)
	src.offeredLines.Add(uint64(lines))
	rt.metrics.batchesOffered.Add(1)
	rt.metrics.linesOffered.Add(uint64(lines))

	// QoS admission: all-or-nothing per batch against the source's
	// in-flight share. The after != lines clause is the progress
	// guarantee — a source with nothing in flight always gets one batch
	// through, however large, so a share smaller than a batch degrades
	// to serialized delivery instead of a livelock.
	after := src.inflight.Add(int64(lines))
	if after > int64(rt.cfg.SourceShareLines) && after != int64(lines) {
		src.inflight.Add(int64(-lines))
		src.shedBatches.Add(1)
		src.shedLines.Add(uint64(lines))
		rt.metrics.batchesShed.Add(1)
		rt.metrics.linesShed.Add(uint64(lines))
		w.Header().Set("Retry-After", "1")
		w.Header().Set("X-Shed-Lines", fmt.Sprint(lines))
		http.Error(w, fmt.Sprintf("source %q over its queue share, batch shed", srcName), http.StatusTooManyRequests)
		return
	}
	defer src.inflight.Add(int64(-lines))

	// Sequence assignment is the only globally serialized step: the
	// batch owns [base, base+lines), and each sub-batch line maps back
	// through its position mask.
	rt.seqMu.Lock()
	base := rt.nextSeq
	rt.nextSeq += uint64(lines)
	rt.seqMu.Unlock()

	bodies, masks, counts, _ := console.SplitBatch(body, len(rt.cfg.Replicas), rt.ownerOf)

	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.DeliverTimeout)
	defer cancel()
	var wg sync.WaitGroup
	failed := make([]int, len(bodies)) // failed line count per replica
	for ri := range bodies {
		if counts[ri] == 0 {
			continue
		}
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			rt.metrics.subBatches.Add(1)
			if err := rt.deliver(ctx, ri, bodies[ri], srcName, base, masks[ri]); err != nil {
				failed[ri] = counts[ri]
			}
		}(ri)
	}
	wg.Wait()

	failedLines := 0
	for _, n := range failed {
		failedLines += n
	}
	delivered := lines - failedLines
	src.acceptedLines.Add(uint64(delivered))
	rt.metrics.linesDelivered.Add(uint64(delivered))
	if failedLines > 0 {
		src.failedBatches.Add(1)
		src.failedLines.Add(uint64(failedLines))
		rt.metrics.batchesFailed.Add(1)
		rt.metrics.linesFailed.Add(uint64(failedLines))
		w.Header().Set("X-Failed-Lines", fmt.Sprint(failedLines))
		http.Error(w, "replica delivery failed", http.StatusBadGateway)
		return
	}
	src.acceptedBatches.Add(1)
	rt.metrics.batchesAccepted.Add(1)
	w.WriteHeader(http.StatusAccepted)
}

// deliver POSTs one sub-batch to its replica, retrying 429, 503 and
// connection errors with jittered exponential backoff until ctx
// expires — a replica mid-drain or mid-restart is absorbed here, which
// is what lets the fleet keep its exactly-once line accounting across
// replica lifecycle events.
func (rt *Router) deliver(ctx context.Context, ri int, body []byte, srcName string, base uint64, mask []uint64) error {
	url := rt.cfg.Replicas[ri] + "/ingest"
	maskHdr := base64.StdEncoding.EncodeToString(console.MaskBytes(mask))
	backoff := 5 * time.Millisecond
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("router: building request: %w", err)
		}
		req.Header.Set("Content-Type", "text/plain")
		req.Header.Set(serve.SourceHeader, srcName)
		req.Header.Set(serve.SeqBaseHeader, strconv.FormatUint(base, 10))
		req.Header.Set(serve.SeqMaskHeader, maskHdr)
		resp, err := rt.client.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				return nil
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				if ra := resp.Header.Get("Retry-After"); ra != "" {
					if secs, aerr := strconv.Atoi(ra); aerr == nil && secs > 0 {
						backoff = time.Duration(secs) * time.Second / 10
					}
				}
			default:
				return fmt.Errorf("router: replica %s: unexpected status %s", rt.cfg.Replicas[ri], resp.Status)
			}
		}
		// Connection error (replica restarting), 429 (replica queue
		// full) or 503 (replica draining): back off and try again.
		rt.metrics.deliverRetries.Add(1)
		select {
		case <-time.After(jitter(backoff)):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff < 250*time.Millisecond {
			backoff *= 2
		}
	}
}

// jitter spreads a backoff uniformly over [d/2, 3d/2) so senders shed
// by the same drain don't return in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// countLines counts newline-delimited records exactly as titand does:
// one per newline, plus a final unterminated line.
func countLines(data []byte) int {
	n := 0
	for _, b := range data {
		if b == '\n' {
			n++
		}
	}
	if len(data) > 0 && data[len(data)-1] != '\n' {
		n++
	}
	return n
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
