package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sort"
	"sync"

	"titanre/internal/serve"
	"titanre/internal/store"
	"titanre/internal/titanql"
)

// Read-side fan-out and deterministic merge.
//
// Every cluster read follows the same shape: ask all replicas, combine
// with an operator that is commutative and associative over disjoint
// event sets, render with the identical writeJSON the replicas use.
// Because the router's ingest split partitions lines exactly once
// across replicas, the merged answer equals the single-daemon answer
// over the undivided stream — byte for byte, which is how the tests
// check it.
//
//   - /rollup and /top fetch ?partial=1 raw accumulators and merge with
//     the store kernels (replica partials and segment partials are the
//     same algebra).
//   - /query does the same through titanql, ranking only after the
//     cluster-wide merge — ranking before merging would be wrong
//     whenever a key's count is split across replicas.
//   - /alerts is the stateful one: it unions the replicas' evidence
//     feeds and replays them in global sequence order through a fresh
//     detector engine (see internal/serve's alert feed for the
//     superset-replay argument).

// DegradedHeader is set on /alerts responses that cannot vouch for
// single-daemon exactness (a replica's feed was incomplete, or replica
// alert configs diverge). The body is still the best available merge.
const DegradedHeader = "X-Titan-Degraded"

// fanResult is one replica's response to a read fan-out.
type fanResult struct {
	replica string
	status  int
	body    []byte
	err     error
}

// fanOut GETs path?query from every replica concurrently.
func (rt *Router) fanOut(r *http.Request, path, rawQuery string) []fanResult {
	rt.metrics.readFanouts.Add(1)
	results := make([]fanResult, len(rt.cfg.Replicas))
	var wg sync.WaitGroup
	for ri, base := range rt.cfg.Replicas {
		wg.Add(1)
		go func(ri int, base string) {
			defer wg.Done()
			res := fanResult{replica: base}
			u := base + path
			if rawQuery != "" {
				u += "?" + rawQuery
			}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
			if err != nil {
				res.err = err
				results[ri] = res
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				res.err = err
				results[ri] = res
				return
			}
			defer resp.Body.Close()
			res.status = resp.StatusCode
			res.body, res.err = io.ReadAll(resp.Body)
			results[ri] = res
		}(ri, base)
	}
	wg.Wait()
	return results
}

// gatherOK filters fan-out results, writing the error response and
// returning ok=false when any replica failed. A replica's 400 (bad
// query) is forwarded as-is — all replicas parse the same query, so the
// first bad-request body speaks for the cluster.
func (rt *Router) gatherOK(w http.ResponseWriter, results []fanResult) bool {
	for _, res := range results {
		if res.err != nil {
			rt.metrics.readErrors.Add(1)
			http.Error(w, fmt.Sprintf("replica %s: %v", res.replica, res.err), http.StatusBadGateway)
			return false
		}
		if res.status == http.StatusBadRequest {
			rt.metrics.readErrors.Add(1)
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusBadRequest)
			_, _ = w.Write(res.body)
			return false
		}
		if res.status != http.StatusOK {
			rt.metrics.readErrors.Add(1)
			http.Error(w, fmt.Sprintf("replica %s: status %d", res.replica, res.status), http.StatusBadGateway)
			return false
		}
	}
	return true
}

// partialQuery re-encodes the client's query string with partial=1
// appended, preserving every other parameter verbatim.
func partialQuery(r *http.Request) string {
	q := r.URL.Query()
	q.Set("partial", "1")
	return q.Encode()
}

func decodeAll[T any](results []fanResult) ([]T, error) {
	out := make([]T, len(results))
	for i, res := range results {
		if err := json.Unmarshal(res.body, &out[i]); err != nil {
			return nil, fmt.Errorf("replica %s: decoding partial: %w", res.replica, err)
		}
	}
	return out, nil
}

// handleRollup merges replica rollup accumulators into the exact
// single-daemon RollupDoc.
func (rt *Router) handleRollup(w http.ResponseWriter, r *http.Request) {
	results := rt.fanOut(r, "/rollup", partialQuery(r))
	if !rt.gatherOK(w, results) {
		return
	}
	parts, err := decodeAll[store.RollupPartial](results)
	if err != nil {
		rt.metrics.readErrors.Add(1)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	roll, err := store.MergeRollupPartials(parts)
	if err != nil {
		rt.metrics.readErrors.Add(1)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	rt.metrics.mergedQueries.Add(1)
	writeJSON(w, roll.Doc())
}

// handleTop merges replica top accumulators; ranking and K-truncation
// happen only here, after cluster-wide counts are whole.
func (rt *Router) handleTop(w http.ResponseWriter, r *http.Request) {
	results := rt.fanOut(r, "/top", partialQuery(r))
	if !rt.gatherOK(w, results) {
		return
	}
	parts, err := decodeAll[store.TopPartial](results)
	if err != nil {
		rt.metrics.readErrors.Add(1)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	top, err := store.MergeTopPartials(parts)
	if err != nil {
		rt.metrics.readErrors.Add(1)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	rt.metrics.mergedQueries.Add(1)
	writeJSON(w, top.Doc())
}

// handleQuery merges replica titanql partials into the exact
// single-daemon query document.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	results := rt.fanOut(r, "/query", partialQuery(r))
	if !rt.gatherOK(w, results) {
		return
	}
	parts, err := decodeAll[titanql.Partial](results)
	if err != nil {
		rt.metrics.readErrors.Add(1)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	doc, err := titanql.MergePartials(parts)
	if err != nil {
		rt.metrics.readErrors.Add(1)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	rt.metrics.mergedQueries.Add(1)
	writeJSON(w, doc)
}

// handleAlerts reconstructs the cluster-wide alert stream: union the
// replicas' evidence feeds, sort by global sequence (records arrive
// sorted per replica; the union is deduped by seq and re-sorted), and
// replay through a fresh engine with the shared config. When any feed
// is incomplete or configs diverge the response is marked degraded but
// still served — a best-effort alert list beats a 502 during partial
// fleet visibility.
func (rt *Router) handleAlerts(w http.ResponseWriter, r *http.Request) {
	results := rt.fanOut(r, "/alertfeed", "")
	if !rt.gatherOK(w, results) {
		return
	}
	docs, err := decodeAll[serve.FeedDoc](results)
	if err != nil {
		rt.metrics.readErrors.Add(1)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	degraded := ""
	bySeq := make(map[uint64]serve.FeedRecord)
	for i, doc := range docs {
		if !doc.Complete {
			degraded = fmt.Sprintf("replica %s: incomplete alert feed", results[i].replica)
		}
		if i > 0 && !reflect.DeepEqual(doc.Config, docs[0].Config) {
			degraded = fmt.Sprintf("replica %s: alert config diverges", results[i].replica)
		}
		for _, rec := range doc.Records {
			bySeq[rec.Seq] = rec
		}
	}
	records := make([]serve.FeedRecord, 0, len(bySeq))
	for _, rec := range bySeq {
		records = append(records, rec)
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	alerts, err := serve.ReplayFeed(docs[0].Config, records)
	if err != nil {
		rt.metrics.readErrors.Add(1)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if degraded != "" {
		rt.metrics.degradedAlerts.Add(1)
		w.Header().Set(DegradedHeader, degraded)
	}
	rt.metrics.mergedAlerts.Add(1)
	writeJSON(w, serve.AlertViews(alerts))
}
