package router

import (
	"titanre/internal/topology"
)

// Consistent placement of the node space.
//
// Every interned topology node is assigned to exactly one replica by
// rendezvous (highest-random-weight) hashing: each replica's score for
// a node is an FNV-1a hash of (replica name, node id), and the node
// goes to the highest scorer. Rendezvous gives the two properties the
// fleet needs without a virtual-node ring: placement depends only on
// the replica name set (order-independent, no coordination state to
// persist), and removing a replica moves only the nodes it owned —
// every other node keeps its home, so warm replica caches and per-node
// actor state stay put across membership changes.
//
// The node space is small (topology.TotalNodes, under twenty thousand)
// and fixed at build time, so the whole map is precomputed into a flat
// owners array: routing one console line is a cname decode plus one
// array load, no hashing on the hot path.

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// ownerScore is the rendezvous weight of one (replica, node) pair.
func ownerScore(replica string, node topology.NodeID) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(replica); i++ {
		h ^= uint64(replica[i])
		h *= fnvPrime64
	}
	h ^= uint64(uint32(node)) & 0xff
	h *= fnvPrime64
	h ^= (uint64(uint32(node)) >> 8) & 0xff
	h *= fnvPrime64
	h ^= (uint64(uint32(node)) >> 16) & 0xff
	h *= fnvPrime64
	h ^= (uint64(uint32(node)) >> 24) & 0xff
	h *= fnvPrime64
	return h
}

// buildOwners precomputes the owning replica index for every node.
func buildOwners(replicas []string) []uint8 {
	owners := make([]uint8, topology.TotalNodes)
	for node := range owners {
		best, bestScore := 0, uint64(0)
		for ri, name := range replicas {
			// Ties (vanishingly rare with 64-bit scores) resolve to the
			// lower index, deterministically, because iteration ascends.
			if s := ownerScore(name, topology.NodeID(node)); s > bestScore {
				best, bestScore = ri, s
			}
		}
		owners[node] = uint8(best)
	}
	return owners
}
