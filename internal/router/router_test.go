package router

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"testing"
	"time"

	"titanre/internal/console"
	"titanre/internal/serve"
	"titanre/internal/sim"
)

// clusterSim runs (and memoizes) a one-month simulation shared by the
// cluster equivalence, drain and bench tests.
var clusterSim = sync.OnceValue(func() []console.Event {
	cfg := sim.DefaultConfig()
	cfg.End = cfg.Start.AddDate(0, 1, 0)
	return sim.Run(cfg).Events
})

func encodeLog(t testing.TB, events []console.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := console.WriteLog(&buf, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// listenOn binds addr ("127.0.0.1:0" for fresh, an explicit address to
// reclaim a restarted replica's port) with a short retry for the
// rebind race after a shutdown.
func listenOn(t testing.TB, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startReplica serves s on addr and returns its base URL.
func startReplica(t testing.TB, s *serve.Server, addr string) string {
	t.Helper()
	ln := listenOn(t, addr)
	go func() {
		if err := s.ServeListener(ln); err != nil {
			t.Errorf("replica serve: %v", err)
		}
	}()
	return "http://" + ln.Addr().String()
}

// startRouter serves rt on a fresh local port and returns its base URL.
func startRouter(t testing.TB, rt *Router) string {
	t.Helper()
	ln := listenOn(t, "127.0.0.1:0")
	go func() {
		if err := rt.ServeListener(ln); err != nil {
			t.Errorf("router serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			t.Errorf("router shutdown: %v", err)
		}
	})
	return "http://" + ln.Addr().String()
}

func testReplica(t testing.TB, cfg serve.Config) *serve.Server {
	t.Helper()
	s := serve.NewServer(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("replica shutdown: %v", err)
		}
	})
	return s
}

func quiesce(t testing.TB, s *serve.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
}

func getBody(t testing.TB, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body
}

func stream(t testing.TB, url string, log []byte, opt serve.StreamOptions) *serve.StreamStats {
	t.Helper()
	stats, err := serve.StreamLog(context.Background(), url, bytes.NewReader(log), opt)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	return stats
}

// clusterReadPaths are the read endpoints whose merged cluster
// responses must be byte-identical to a single daemon's.
var clusterReadPaths = []string{
	"/alerts",
	"/rollup?by=code,cabinet&bucket=6h",
	"/rollup?by=code&bucket=1h&code=sbe",
	"/top?by=node&k=15",
	"/top?by=serial&k=10&code=sbe",
	"/query?" + url.Values{"q": {"code=48 cabinet=c3-* | by cage | bucket 6h | top 5"}}.Encode(),
	"/query?" + url.Values{"q": {"* | by code | bucket 1d"}}.Encode(),
	"/query?" + url.Values{"q": {"code=sbe | top serial 5"}}.Encode(),
}

// checkMergedReads asserts every cluster read path returns exactly the
// single daemon's bytes.
func checkMergedReads(t testing.TB, routerURL, singleURL string) {
	t.Helper()
	for _, path := range clusterReadPaths {
		want := getBody(t, singleURL+path)
		got := getBody(t, routerURL+path)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s diverges from single daemon:\nrouter: %.300s\nsingle: %.300s", path, got, want)
		}
	}
}

// TestClusterEquivalence is the tentpole gate: a month of simulated
// console history streamed through a 4-replica cluster produces merged
// /alerts, /rollup, /top and /query responses byte-identical to one
// uninterrupted daemon fed the same stream.
func TestClusterEquivalence(t *testing.T) {
	log := encodeLog(t, clusterSim())

	single := testReplica(t, serve.DefaultConfig())
	singleURL := startReplica(t, single, "127.0.0.1:0")
	stream(t, singleURL, log, serve.StreamOptions{Concurrency: 1, Retry429: true})
	quiesce(t, single)

	const n = 4
	replicas := make([]*serve.Server, n)
	urls := make([]string, n)
	for i := range replicas {
		replicas[i] = testReplica(t, serve.DefaultConfig())
		urls[i] = startReplica(t, replicas[i], "127.0.0.1:0")
	}
	rt, err := New(Config{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	routerURL := startRouter(t, rt)

	stats := stream(t, routerURL, log, serve.StreamOptions{Concurrency: 1, Retry429: true, Source: "equiv"})
	if stats.LinesShed != 0 || stats.LinesFailed != 0 {
		t.Fatalf("lossless stream shed %d / failed %d lines", stats.LinesShed, stats.LinesFailed)
	}
	for _, r := range replicas {
		quiesce(t, r)
	}

	// Every replica really owns a share of the stream — the merge is
	// combining real partitions, not one loaded replica plus idlers.
	for i, r := range replicas {
		if st := r.StatsNow(); st.EventsApplied == 0 {
			t.Fatalf("replica %d applied no events; the hash split sent it nothing", i)
		}
	}

	body := getBody(t, routerURL+"/alerts")
	if len(bytes.TrimSpace(body)) <= len("[]") {
		t.Fatal("merged /alerts is empty; the equivalence check needs a real alert stream")
	}
	checkMergedReads(t, routerURL, singleURL)

	// The merged alert stream must not be degraded: every replica's
	// feed was complete.
	resp, err := http.Get(routerURL + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if h := resp.Header.Get(DegradedHeader); h != "" {
		t.Fatalf("merged /alerts degraded: %s", h)
	}
}

// TestClusterDrainRestart streams through the router while one replica
// drains, snapshots, and restarts warm on the same address. The router
// absorbs the outage with delivery retries; afterwards every merged
// read is still byte-identical to an uninterrupted single daemon.
func TestClusterDrainRestart(t *testing.T) {
	log := encodeLog(t, clusterSim())

	single := testReplica(t, serve.DefaultConfig())
	singleURL := startReplica(t, single, "127.0.0.1:0")
	stream(t, singleURL, log, serve.StreamOptions{Concurrency: 1, Retry429: true})
	quiesce(t, single)

	// Two replicas; replica 0 gets a state directory so it can restart
	// warm from its drain snapshot.
	dir0 := t.TempDir()
	cfg0 := serve.DefaultConfig()
	cfg0.SnapshotDir = dir0
	r0 := serve.NewServer(cfg0) // no cleanup: shut down mid-test
	url0 := startReplica(t, r0, "127.0.0.1:0")
	addr0 := url0[len("http://"):]

	r1 := testReplica(t, serve.DefaultConfig())
	url1 := startReplica(t, r1, "127.0.0.1:0")

	rt, err := New(Config{Replicas: []string{url0, url1}})
	if err != nil {
		t.Fatal(err)
	}
	routerURL := startRouter(t, rt)

	// Stream in the background; the sender blocks whenever replica 0 is
	// down because the router only acks fully delivered batches.
	streamDone := make(chan *serve.StreamStats, 1)
	streamErr := make(chan error, 1)
	go func() {
		stats, err := serve.StreamLog(context.Background(), routerURL, bytes.NewReader(log),
			serve.StreamOptions{Concurrency: 1, BatchLines: 256, Retry429: true, Source: "drain"})
		streamDone <- stats
		streamErr <- err
	}()

	// Wait for real progress, then take replica 0 down mid-stream.
	waitFor(t, 20*time.Second, func() bool {
		return rt.metrics.linesDelivered.Load() > 4000
	}, "stream never reached 4000 delivered lines")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := r0.Shutdown(ctx); err != nil {
		cancel()
		t.Fatalf("drain: %v", err)
	}
	cancel()

	// Keep the replica down until the router is observably retrying
	// against it — the sender's current batch is now parked on the
	// outage, which is exactly the window the test exists to cover.
	waitFor(t, 20*time.Second, func() bool {
		return rt.metrics.deliverRetries.Load() > 0
	}, "router never retried against the downed replica")

	// Restart warm on the same address, from the drain snapshot.
	r0b := testReplica(t, cfg0)
	ws, err := r0b.WarmStart(dir0)
	if err != nil {
		t.Fatalf("warm start: %v", err)
	}
	if ws.Replayed == 0 {
		t.Fatal("restarted replica replayed nothing; drain snapshot missing")
	}
	if got := startReplica(t, r0b, addr0); got != url0 {
		t.Fatalf("restarted replica on %s, want %s", got, url0)
	}

	stats := <-streamDone
	if err := <-streamErr; err != nil {
		t.Fatalf("stream: %v", err)
	}
	if stats.LinesShed != 0 || stats.LinesFailed != 0 {
		t.Fatalf("lossless stream shed %d / failed %d lines", stats.LinesShed, stats.LinesFailed)
	}
	if rt.metrics.deliverRetries.Load() == 0 {
		t.Fatal("no delivery retries; the drain window was never exercised")
	}

	quiesce(t, r0b)
	quiesce(t, r1)
	checkMergedReads(t, routerURL, singleURL)
}

func waitFor(t testing.TB, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSourceIsolation overloads the cluster from a flooding source
// while a healthy source streams beside it: the flooder sheds against
// its own queue share, the healthy feed loses nothing, and the
// router's per-source books agree with each client's own account
// exactly — offered == accepted + shed + failed, line for line.
func TestSourceIsolation(t *testing.T) {
	events := clusterSim()
	healthyLog := encodeLog(t, events[:8000])
	floodLog := encodeLog(t, events[8000:24000])

	const n = 2
	replicas := make([]*serve.Server, n)
	urls := make([]string, n)
	gate := make(chan struct{})
	for i := range replicas {
		cfg := serve.DefaultConfig()
		cfg.QueueDepth = 2 // tiny admission queue: the stall backs up fast
		replicas[i] = testReplica(t, cfg)
		replicas[i].StallForTest(gate)
		urls[i] = startReplica(t, replicas[i], "127.0.0.1:0")
	}
	rt, err := New(Config{Replicas: urls, SourceShareLines: 1500})
	if err != nil {
		t.Fatal(err)
	}
	routerURL := startRouter(t, rt)

	// Hold the replicas stalled long enough that deliveries pile up in
	// the router and the flooder's share fills, then release.
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(gate)
	}()

	var wg sync.WaitGroup
	var healthy, flood *serve.StreamStats
	wg.Add(2)
	go func() {
		defer wg.Done()
		// 2 senders x 512 lines = 1024 in flight at most, under the
		// 1500-line share: never shed.
		healthy = stream(t, routerURL, healthyLog,
			serve.StreamOptions{Concurrency: 2, BatchLines: 512, Source: "healthy"})
	}()
	go func() {
		defer wg.Done()
		// 8 senders x 1024 lines = up to 8192 in flight against the same
		// 1500-line share: sheds whenever two batches overlap.
		flood = stream(t, routerURL, floodLog,
			serve.StreamOptions{Concurrency: 8, BatchLines: 1024, Source: "flood"})
	}()
	wg.Wait()
	for _, r := range replicas {
		quiesce(t, r)
	}

	if healthy.LinesShed != 0 || healthy.LinesFailed != 0 {
		t.Fatalf("healthy source shed %d / failed %d of %d lines; isolation leaked",
			healthy.LinesShed, healthy.LinesFailed, healthy.LinesRead)
	}
	if flood.LinesShed == 0 {
		t.Fatal("flooding source never shed; the overload never bit")
	}

	st := rt.StatsNow()
	for name, client := range map[string]*serve.StreamStats{"healthy": healthy, "flood": flood} {
		got, ok := st.Sources[name]
		if !ok {
			t.Fatalf("router has no books for source %q", name)
		}
		if got.OfferedLines != got.AcceptedLines+got.ShedLines+got.FailedLines {
			t.Fatalf("source %q books don't balance: %+v", name, got)
		}
		if got.OfferedLines != client.LinesRead ||
			got.AcceptedLines != client.LinesAccepted ||
			got.ShedLines != client.LinesShed ||
			got.FailedLines != client.LinesFailed {
			t.Fatalf("source %q: router books %d/%d/%d/%d (offered/accepted/shed/failed), client saw %d/%d/%d/%d",
				name, got.OfferedLines, got.AcceptedLines, got.ShedLines, got.FailedLines,
				client.LinesRead, client.LinesAccepted, client.LinesShed, client.LinesFailed)
		}
		if got.OfferedBatches != got.AcceptedBatches+got.ShedBatches+got.FailedBatches {
			t.Fatalf("source %q batch books don't balance: %+v", name, got)
		}
		if got.InflightLines != 0 {
			t.Fatalf("source %q still shows %d in-flight lines after the run", name, got.InflightLines)
		}
	}

	// The exact books surface on /metrics too.
	metrics := string(getBody(t, routerURL+"/metrics"))
	for _, want := range []string{
		fmt.Sprintf(`titanrouter_source_lines_shed_total{source="flood"} %d`, flood.LinesShed),
		`titanrouter_source_lines_shed_total{source="healthy"} 0`,
	} {
		if !bytes.Contains([]byte(metrics), []byte(want)) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
