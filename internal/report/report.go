// Package report renders the study's figures and tables as plain text:
// monthly bar charts, cabinet floor-map heatmaps, cage histograms,
// co-occurrence matrices, and aligned tables. The benchmark harness and
// the titanreport command print these, so a reader can put the output
// next to the paper's figures and compare shapes directly.
package report

import (
	"fmt"
	"io"
	"strings"

	"titanre/internal/analysis"
	"titanre/internal/topology"
)

// glyphs is the intensity ramp used by heatmaps, lightest to darkest.
var glyphs = []rune{'.', ':', '-', '=', '+', '*', '#', '@'}

// Section prints a titled separator.
func Section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

// MonthlyBars renders a monthly-frequency figure as a horizontal bar
// chart, one row per month.
func MonthlyBars(w io.Writer, title string, months []analysis.MonthCount) {
	Section(w, title)
	max := 0
	for _, m := range months {
		if m.Count > max {
			max = m.Count
		}
	}
	for _, m := range months {
		barLen := 0
		if max > 0 {
			barLen = m.Count * 50 / max
		}
		fmt.Fprintf(w, "%s |%-50s %d\n", m.Label(), strings.Repeat("#", barLen), m.Count)
	}
}

// FloorMap renders a cabinet grid (25 rows x 8 columns) as a heatmap.
func FloorMap(w io.Writer, title string, g analysis.Grid) {
	Section(w, title)
	max := g.Max()
	fmt.Fprintf(w, "      col: 0 1 2 3 4 5 6 7   (total %d, max cabinet %d)\n", g.Total(), max)
	for r := 0; r < topology.Rows; r++ {
		var b strings.Builder
		fmt.Fprintf(&b, "row %2d     ", r)
		for c := 0; c < topology.Columns; c++ {
			b.WriteRune(glyph(g[r][c], max))
			b.WriteByte(' ')
		}
		fmt.Fprintln(w, b.String())
	}
	cols := g.ColumnTotals()
	fmt.Fprintf(w, "column totals: %v  (alternation score %.2f)\n", cols, g.AlternationScore())
}

func glyph(v, max int64) rune {
	if v <= 0 || max <= 0 {
		return glyphs[0]
	}
	idx := int(v * int64(len(glyphs)-1) / max)
	if v > 0 && idx == 0 {
		idx = 1
	}
	return glyphs[idx]
}

// CageHistogram renders per-cage counts (bottom to top) with the
// distinct-card companion series.
func CageHistogram(w io.Writer, title string, cc analysis.CageCounts) {
	Section(w, title)
	names := [...]string{"bottom (coolest)", "middle", "top (hottest)"}
	var max int64 = 1
	for _, v := range cc.All {
		if v > max {
			max = v
		}
	}
	for cage := 0; cage < topology.CagesPerCabinet; cage++ {
		bar := int(cc.All[cage] * 40 / max)
		fmt.Fprintf(w, "cage %d %-17s |%-40s %d (distinct cards: %d)\n",
			cage, names[cage], strings.Repeat("#", bar), cc.All[cage], cc.Distinct[cage])
	}
}

// Heatmap renders a co-occurrence matrix (Fig. 13) with row/column labels.
func Heatmap(w io.Writer, title string, labels []string, m [][]float64) {
	Section(w, title)
	width := 0
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	fmt.Fprintf(w, "%*s  %s\n", width, "prev\\next", strings.Join(shorten(labels), " "))
	for i, row := range m {
		var b strings.Builder
		fmt.Fprintf(&b, "%*s  ", width, labels[i])
		for _, v := range row {
			fmt.Fprintf(&b, "%4.2f ", v)
		}
		fmt.Fprintln(w, b.String())
	}
}

func shorten(labels []string) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		s := strings.TrimPrefix(l, "XID ")
		if len(s) > 4 {
			s = s[:4]
		}
		out[i] = fmt.Sprintf("%4s", s)
	}
	return out
}

// Sparkline renders a daily-count series as weekly buckets using a block
// ramp, one line per half-year — compact enough to eyeball burstiness the
// way Fig. 10 does.
func Sparkline(w io.Writer, title string, daily []int) {
	Section(w, title)
	if len(daily) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	// Weekly buckets.
	var weeks []int
	for i := 0; i < len(daily); i += 7 {
		sum := 0
		for j := i; j < i+7 && j < len(daily); j++ {
			sum += daily[j]
		}
		weeks = append(weeks, sum)
	}
	max := 0
	for _, v := range weeks {
		if v > max {
			max = v
		}
	}
	ramp := []rune(" .:-=+*#@")
	const perLine = 26 // half a year of weeks
	for i := 0; i < len(weeks); i += perLine {
		var b strings.Builder
		fmt.Fprintf(&b, "week %3d |", i)
		for j := i; j < i+perLine && j < len(weeks); j++ {
			idx := 0
			if max > 0 {
				idx = weeks[j] * (len(ramp) - 1) / max
				if weeks[j] > 0 && idx == 0 {
					idx = 1
				}
			}
			b.WriteRune(ramp[idx])
		}
		b.WriteString("|")
		fmt.Fprintln(w, b.String())
	}
	fmt.Fprintf(w, "weekly max %d\n", max)
}

// Table renders rows under aligned headers.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	Section(w, title)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	fmt.Fprintln(w, line(headers))
	fmt.Fprintln(w, strings.Repeat("-", len(line(headers))))
	for _, row := range rows {
		fmt.Fprintln(w, line(row))
	}
}

// Correlations renders the Figs. 16-19 result rows.
func Correlations(w io.Writer, title string, ucs []analysis.UtilizationCorrelation) {
	rows := make([][]string, 0, len(ucs))
	for _, uc := range ucs {
		rows = append(rows, []string{
			uc.Metric.String(),
			fmt.Sprintf("%.2f", uc.AllSpearman.Coefficient),
			fmt.Sprintf("%.2f", uc.AllPearson.Coefficient),
			fmt.Sprintf("%.2f", uc.ExclSpearman.Coefficient),
			fmt.Sprintf("%.2f", uc.ExclPearson.Coefficient),
			fmt.Sprintf("%d/%d", uc.JobsExcl, uc.JobsAll),
		})
	}
	Table(w, title,
		[]string{"metric", "spearman", "pearson", "spearman(excl top10)", "pearson(excl top10)", "jobs excl/all"},
		rows)
}

// DelayHistogram renders the Fig. 8 retirement-timing result.
func DelayHistogram(w io.Writer, title string, rt analysis.RetirementTiming) {
	Section(w, title)
	fmt.Fprintf(w, "retirements <= 10 min after a DBE : %d\n", rt.Within10Min)
	fmt.Fprintf(w, "retirements 10 min - 6 h after    : %d\n", rt.TenMinTo6h)
	fmt.Fprintf(w, "retirements > 6 h after           : %d (likely two-SBE retirements)\n", rt.Beyond6h)
	fmt.Fprintf(w, "retirements with no prior DBE     : %d\n", rt.NoPrecedingDBE)
	fmt.Fprintf(w, "DBE pairs without retirement      : %d\n", rt.DBEPairsWithoutRetirement)
}
