package report

import (
	"fmt"
	"io"

	"titanre/internal/ingest"
)

// IngestHealth renders the ingestion-health section of a report: the
// per-artifact accepted/recovered/quarantined ledger, quarantine reasons,
// overall coverage, and the degraded-mode confidence flags the study
// derived from it. Only dirty loads print this section, so clean runs
// stay byte-identical to the fail-fast pipeline.
func IngestHealth(w io.Writer, h *ingest.Health, flags []ingest.ConfidenceFlag) {
	Section(w, "Ingestion health")
	fmt.Fprintf(w, "overall coverage: %.2f%% of read lines survived into the analysis\n", 100*h.Coverage())
	rows := [][]string{}
	for _, a := range h.Artifacts {
		if a.Missing {
			rows = append(rows, []string{a.Name, "-", "-", "-", "-", "MISSING"})
			continue
		}
		rows = append(rows, []string{
			a.Name,
			fmt.Sprintf("%d", a.Read),
			fmt.Sprintf("%d", a.Accepted),
			fmt.Sprintf("%d", a.Recovered),
			fmt.Sprintf("%d", a.Quarantined),
			fmt.Sprintf("%.2f%%", 100*a.Coverage()),
		})
	}
	Table(w, "per-artifact ledger (read = accepted + recovered + quarantined)",
		[]string{"artifact", "read", "accepted", "recovered", "quarantined", "coverage"}, rows)

	catRows := [][]string{}
	for _, a := range h.Artifacts {
		for _, cat := range ingest.SortedCategories(a.ByCategory) {
			catRows = append(catRows, []string{a.Name, string(cat), fmt.Sprintf("%d", a.ByCategory[cat])})
		}
	}
	if len(catRows) > 0 {
		Table(w, "quarantine and recovery reasons", []string{"artifact", "category", "lines"}, catRows)
	}

	if len(flags) == 0 {
		fmt.Fprintf(w, "confidence: all artifacts above coverage threshold; no analyses degraded\n")
		return
	}
	for _, f := range flags {
		fmt.Fprintf(w, "LOW CONFIDENCE: %s at %.2f%% coverage degrades %s\n",
			f.Artifact, 100*f.Coverage, f.Affected)
	}
}
