package report

import (
	"strings"
	"testing"

	"titanre/internal/analysis"
	"titanre/internal/topology"
)

func TestMonthlyBars(t *testing.T) {
	var sb strings.Builder
	months := []analysis.MonthCount{
		{Year: 2013, Month: 6, Count: 4},
		{Year: 2013, Month: 7, Count: 0},
		{Year: 2013, Month: 8, Count: 8},
	}
	MonthlyBars(&sb, "test figure", months)
	out := sb.String()
	if !strings.Contains(out, "== test figure ==") {
		t.Error("missing section title")
	}
	if !strings.Contains(out, "2013-06") || !strings.Contains(out, "2013-08") {
		t.Error("missing month labels")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Bar for count 8 must be twice the bar for count 4.
	var bar4, bar8 int
	for _, l := range lines {
		if strings.HasPrefix(l, "2013-06") {
			bar4 = strings.Count(l, "#")
		}
		if strings.HasPrefix(l, "2013-08") {
			bar8 = strings.Count(l, "#")
		}
	}
	if bar8 != 2*bar4 || bar4 == 0 {
		t.Errorf("bars not proportional: %d vs %d", bar4, bar8)
	}
}

func TestMonthlyBarsEmpty(t *testing.T) {
	var sb strings.Builder
	MonthlyBars(&sb, "empty", []analysis.MonthCount{{Year: 2013, Month: 6}})
	if !strings.Contains(sb.String(), "2013-06") {
		t.Error("zero-count month missing")
	}
}

func TestFloorMap(t *testing.T) {
	var g analysis.Grid
	g[0][0] = 10
	g[24][7] = 5
	var sb strings.Builder
	FloorMap(&sb, "map", g)
	out := sb.String()
	if !strings.Contains(out, "row  0") || !strings.Contains(out, "row 24") {
		t.Error("rows missing")
	}
	if !strings.Contains(out, "total 15") {
		t.Error("total missing")
	}
	if !strings.Contains(out, "@") {
		t.Error("max cell should use the darkest glyph")
	}
	if !strings.Contains(out, "alternation score") {
		t.Error("column totals footer missing")
	}
}

func TestGlyphRamp(t *testing.T) {
	if glyph(0, 10) != '.' {
		t.Error("zero must be lightest")
	}
	if glyph(10, 10) != '@' {
		t.Error("max must be darkest")
	}
	if glyph(1, 1000) == '.' {
		t.Error("nonzero must be distinguishable from zero")
	}
	if glyph(5, 0) != '.' {
		t.Error("zero max must not divide by zero")
	}
}

func TestCageHistogram(t *testing.T) {
	var sb strings.Builder
	cc := analysis.CageCounts{
		All:      [topology.CagesPerCabinet]int64{1, 2, 4},
		Distinct: [topology.CagesPerCabinet]int64{1, 2, 3},
	}
	CageHistogram(&sb, "cages", cc)
	out := sb.String()
	for _, want := range []string{"bottom (coolest)", "top (hottest)", "distinct cards: 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHeatmap(t *testing.T) {
	var sb strings.Builder
	Heatmap(&sb, "hm", []string{"XID 48", "XID 45"}, [][]float64{{0, 0.73}, {0.5, 0}})
	out := sb.String()
	if !strings.Contains(out, "0.73") || !strings.Contains(out, "0.50") {
		t.Errorf("matrix values missing:\n%s", out)
	}
	if !strings.Contains(out, "XID 48") {
		t.Error("row labels missing")
	}
}

func TestTable(t *testing.T) {
	var sb strings.Builder
	Table(&sb, "tbl", []string{"code", "name"}, [][]string{{"48", "double bit"}, {"13", "gfx"}})
	out := sb.String()
	if !strings.Contains(out, "code") || !strings.Contains(out, "double bit") {
		t.Errorf("table content missing:\n%s", out)
	}
	// Header separator present.
	if !strings.Contains(out, "----") {
		t.Error("separator missing")
	}
}

func TestDelayHistogram(t *testing.T) {
	var sb strings.Builder
	DelayHistogram(&sb, "fig8", analysis.RetirementTiming{
		Within10Min: 18, TenMinTo6h: 1, Beyond6h: 18, DBEPairsWithoutRetirement: 17,
	})
	out := sb.String()
	for _, want := range []string{": 18", ": 1", ": 17"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestCorrelations(t *testing.T) {
	var sb strings.Builder
	ucs := []analysis.UtilizationCorrelation{{Metric: analysis.CoreHours, JobsAll: 10, JobsExcl: 8}}
	Correlations(&sb, "corr", ucs)
	if !strings.Contains(sb.String(), "GPU core hours") || !strings.Contains(sb.String(), "8/10") {
		t.Errorf("correlation row missing:\n%s", sb.String())
	}
}

func TestSparkline(t *testing.T) {
	var sb strings.Builder
	daily := make([]int, 100)
	for i := 42; i < 49; i++ {
		daily[i] = 10 // one bursty week (days 42-48 = week 6)
	}
	Sparkline(&sb, "spark", daily)
	out := sb.String()
	if !strings.Contains(out, "week   0") {
		t.Errorf("missing week header:\n%s", out)
	}
	if !strings.Contains(out, "@") {
		t.Errorf("burst week should hit the darkest glyph:\n%s", out)
	}
	if !strings.Contains(out, "weekly max 70") {
		t.Errorf("weekly max wrong:\n%s", out)
	}
	var empty strings.Builder
	Sparkline(&empty, "none", nil)
	if !strings.Contains(empty.String(), "no data") {
		t.Error("empty series should say so")
	}
}
