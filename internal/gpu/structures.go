// Package gpu models the NVIDIA Tesla K20X (GK110) device installed in
// every Titan compute node: its memory structures and their ECC
// protection, the SECDED error semantics, the InfoROM error counters that
// nvidia-smi reads, and the dynamic page-retirement state machine.
//
// The model captures exactly the behaviours the reliability study depends
// on: which structure an error lands in (86% of DBEs in device memory,
// 14% in the register file; most SBEs in the L2 cache), how SECDED
// reacts (correct SBEs silently, detect DBEs and terminate the
// application), when a page is retired (one DBE, or two SBEs on the same
// page), and the driver bug that loses a DBE's InfoROM record when the
// node goes down before the record is flushed — the reason nvidia-smi
// undercounts DBEs relative to console logs (Observation 2).
package gpu

import "fmt"

// Structure identifies a memory structure on the K20X die or board.
type Structure int

const (
	DeviceMemory  Structure = iota // 6 GB GDDR5 on-board memory
	L2Cache                        // 1536 KB shared L2
	RegisterFile                   // 64 K registers per SM, 14 SMs
	L1Shared                       // 64 KB combined shared memory + L1 per SM
	ReadOnlyData                   // 48 KB read-only data cache per SM
	TextureMemory                  // texture units
	numStructures
)

// NumStructures is the number of modeled memory structures.
const NumStructures = int(numStructures)

func (s Structure) String() string {
	switch s {
	case DeviceMemory:
		return "device memory"
	case L2Cache:
		return "L2 cache"
	case RegisterFile:
		return "register file"
	case L1Shared:
		return "L1/shared memory"
	case ReadOnlyData:
		return "read-only data cache"
	case TextureMemory:
		return "texture memory"
	default:
		return fmt.Sprintf("Structure(%d)", int(s))
	}
}

// Protection describes the error protection scheme of a structure.
type Protection int

const (
	SECDED      Protection = iota // single error correct, double error detect
	Parity                        // detect-only parity
	Unprotected                   // no coverage (logic, queues, schedulers)
)

func (p Protection) String() string {
	switch p {
	case SECDED:
		return "SECDED ECC"
	case Parity:
		return "parity"
	case Unprotected:
		return "unprotected"
	default:
		return fmt.Sprintf("Protection(%d)", int(p))
	}
}

// StructureInfo describes one memory structure of the K20X.
type StructureInfo struct {
	Structure  Structure
	Protection Protection
	// Bytes is the total capacity across the whole device (all 14 SMs
	// for per-SM structures).
	Bytes int64
}

// K20X architectural constants.
const (
	SMs               = 14
	CUDACoresPerSM    = 192
	CUDACores         = SMs * CUDACoresPerSM // 2688
	DeviceMemoryBytes = 6 << 30              // 6 GB GDDR5
	L2CacheBytes      = 1536 << 10           // 1536 KB
	RegistersPerSM    = 64 << 10             // 64K 32-bit registers
	RegisterFileBytes = int64(SMs) * RegistersPerSM * 4
	L1SharedBytes     = int64(SMs) * (64 << 10)
	ReadOnlyBytes     = int64(SMs) * (48 << 10)
	TextureBytes      = int64(SMs) * (12 << 10)
	// PageBytes is the framebuffer page granularity used by dynamic page
	// retirement.
	PageBytes = 64 << 10
)

// Structures returns the protection map of the K20X: register files,
// shared memory, L1 and L2 caches, and device memory are SECDED
// protected; the read-only data cache is parity protected.
func Structures() []StructureInfo {
	return []StructureInfo{
		{DeviceMemory, SECDED, DeviceMemoryBytes},
		{L2Cache, SECDED, L2CacheBytes},
		{RegisterFile, SECDED, RegisterFileBytes},
		{L1Shared, SECDED, L1SharedBytes},
		{ReadOnlyData, Parity, ReadOnlyBytes},
		{TextureMemory, SECDED, TextureBytes},
	}
}

// InfoOf returns the StructureInfo for one structure.
func InfoOf(s Structure) StructureInfo {
	for _, si := range Structures() {
		if si.Structure == s {
			return si
		}
	}
	panic(fmt.Sprintf("gpu: unknown structure %d", int(s)))
}

// DevicePages is the number of retirable framebuffer pages.
const DevicePages = DeviceMemoryBytes / PageBytes
