package gpu

// Dynamic page retirement.
//
// NVIDIA introduced dynamic page retirement (surfaced as XID 63/64) in
// drivers deployed on Titan from January 2014. A framebuffer page is
// retired under two circumstances: (1) one double bit error on the page,
// or (2) two single bit errors on the same page. The retired page
// addresses are stored in the InfoROM; at driver load the framebuffer
// keeps those pages away from applications, extending the useful life of
// the card. The application crashes in the DBE case (SECDED cannot
// correct) but not in the two-SBE case (both errors were corrected).

// MaxRetiredPages is the InfoROM retirement-table capacity; NVIDIA sizes
// it at 64 entries, after which the card must be serviced (RMA).
const MaxRetiredPages = 64

// RetireCause says which rule retired a page.
type RetireCause int

const (
	// RetiredByDBE: a double bit error hit the page.
	RetiredByDBE RetireCause = iota
	// RetiredByTwoSBE: a second single bit error hit an already-degraded
	// page.
	RetiredByTwoSBE
)

func (c RetireCause) String() string {
	if c == RetiredByDBE {
		return "double bit error"
	}
	return "two single bit errors on the same page"
}

// RetiredPage is one InfoROM retirement record.
type RetiredPage struct {
	Page  int32
	Cause RetireCause
}

// RetirementState is the per-card page-retirement bookkeeping. The zero
// value is ready to use.
type RetirementState struct {
	// sbeSeen marks device-memory pages that have one corrected SBE on
	// record; a second SBE on such a page retires it.
	sbeSeen map[int32]bool
	// retired is the ordered InfoROM retirement list.
	retired []RetiredPage
	// retiredSet provides O(1) is-retired queries.
	retiredSet map[int32]bool
	// Enabled gates the feature: drivers before Jan 2014 did not retire
	// pages and emitted no XID 63/64. The simulator flips this at the
	// driver-upgrade epoch.
	Enabled bool
}

func (r *RetirementState) init() {
	if r.sbeSeen == nil {
		r.sbeSeen = make(map[int32]bool)
		r.retiredSet = make(map[int32]bool)
	}
}

// recordSBE notes a corrected SBE on a device-memory page and retires the
// page when it is the second hit. It reports whether a retirement fired.
func (r *RetirementState) recordSBE(page int32) bool {
	if !r.Enabled {
		return false
	}
	r.init()
	if r.retiredSet[page] {
		return false // already out of service
	}
	if r.sbeSeen[page] {
		r.retire(page, RetiredByTwoSBE)
		return true
	}
	r.sbeSeen[page] = true
	return false
}

// recordDBE retires the page unconditionally (first rule). It reports
// whether a retirement fired (false when the page was already retired or
// the feature is disabled).
func (r *RetirementState) recordDBE(page int32) bool {
	if !r.Enabled {
		return false
	}
	r.init()
	if r.retiredSet[page] {
		return false
	}
	r.retire(page, RetiredByDBE)
	return true
}

func (r *RetirementState) retire(page int32, cause RetireCause) {
	r.retired = append(r.retired, RetiredPage{Page: page, Cause: cause})
	r.retiredSet[page] = true
	delete(r.sbeSeen, page)
}

// RecordSBE is the exported form of the second-SBE retirement rule, for
// online consumers (titand) that replay the machine from console
// records rather than through a Card. It reports whether a retirement
// fired.
func (r *RetirementState) RecordSBE(page int32) bool { return r.recordSBE(page) }

// RecordDBE is the exported form of the one-DBE retirement rule; see
// RecordSBE.
func (r *RetirementState) RecordDBE(page int32) bool { return r.recordDBE(page) }

// Retired returns the InfoROM retirement list in retirement order.
func (r *RetirementState) Retired() []RetiredPage {
	out := make([]RetiredPage, len(r.retired))
	copy(out, r.retired)
	return out
}

// IsRetired reports whether a page is out of service.
func (r *RetirementState) IsRetired(page int32) bool {
	return r.retiredSet != nil && r.retiredSet[page]
}

// PendingSBEPages returns how many pages currently carry exactly one SBE
// and would retire on the next hit.
func (r *RetirementState) PendingSBEPages() int { return len(r.sbeSeen) }

// Exhausted reports whether the retirement table is full — the card has
// no headroom left and should be serviced.
func (r *RetirementState) Exhausted() bool { return len(r.retired) >= MaxRetiredPages }

// Headroom returns how many more pages can be retired before exhaustion.
func (r *RetirementState) Headroom() int {
	h := MaxRetiredPages - len(r.retired)
	if h < 0 {
		return 0
	}
	return h
}
