package gpu

import (
	"time"

	"titanre/internal/topology"
)

// Fleet maps every node slot to the physical card currently installed in
// it and owns the pool of spare cards. It implements OLCF's operational
// policy from the paper: a card that encounters a threshold number of
// double bit errors is pulled from production into the hot-spare cluster
// (for rigorous stress testing and eventual return to the vendor) and a
// spare takes its place.
type Fleet struct {
	// slot[n] is the card installed in node n; nil for the unpopulated
	// service slots.
	slot []*Card
	// bySerial indexes every card ever manufactured for this fleet.
	bySerial map[Serial]*Card
	// spares holds cards waiting to be swapped in.
	spares []*Card
	// hotSpare holds cards pulled from production.
	hotSpare []*Card
	// nextSerial is the serial the next manufactured card receives.
	nextSerial Serial
	// SwapThreshold is how many DBE incidents a card may encounter
	// before it is pulled. Zero or negative disables the policy.
	SwapThreshold int
}

// NewFleet populates every compute slot with a fresh card and manufactures
// spareCount spares. Slots are populated in dense node order; the last
// topology.ServiceNodes slots are left empty, mirroring Titan's 18,688
// compute nodes out of 19,200 physical slots.
func NewFleet(spareCount int) *Fleet {
	f := &Fleet{
		slot:          make([]*Card, topology.TotalNodes),
		bySerial:      make(map[Serial]*Card),
		SwapThreshold: 1,
	}
	for n := 0; n < topology.TotalComputeGPUs; n++ {
		f.slot[n] = f.manufacture()
	}
	for i := 0; i < spareCount; i++ {
		f.spares = append(f.spares, f.manufacture())
	}
	return f
}

func (f *Fleet) manufacture() *Card {
	f.nextSerial++
	c := NewCard(f.nextSerial)
	f.bySerial[c.Serial] = c
	return c
}

// CardAt returns the card installed in node n, or nil for an empty slot.
func (f *Fleet) CardAt(n topology.NodeID) *Card {
	if !n.Valid() {
		return nil
	}
	return f.slot[n]
}

// CardBySerial returns a card by serial, or nil when unknown.
func (f *Fleet) CardBySerial(s Serial) *Card { return f.bySerial[s] }

// Populated reports whether node n holds a card.
func (f *Fleet) Populated(n topology.NodeID) bool { return f.CardAt(n) != nil }

// EnableRetirement switches on dynamic page retirement on every card,
// modeling the driver upgrade Titan received in January 2014.
func (f *Fleet) EnableRetirement() {
	for _, c := range f.bySerial {
		c.Retirement.Enabled = true
	}
}

// NoteDBE applies the hot-spare policy after a console-visible DBE on node
// n at time now. When the card's DBE count reaches the threshold the card
// is moved to the hot-spare cluster and a spare (or a freshly manufactured
// card when no spare remains) is installed. It returns the removed card,
// or nil when no swap happened.
func (f *Fleet) NoteDBE(n topology.NodeID, now time.Time) *Card {
	c := f.CardAt(n)
	if c == nil || f.SwapThreshold <= 0 || c.DBEEvents < f.SwapThreshold {
		return nil
	}
	c.Retired = true
	c.RetiredAt = now
	f.hotSpare = append(f.hotSpare, c)
	var repl *Card
	if len(f.spares) > 0 {
		repl = f.spares[0]
		f.spares = f.spares[1:]
	} else {
		repl = f.manufacture()
	}
	// The replacement inherits the slot's retirement-feature setting.
	repl.Retirement.Enabled = c.Retirement.Enabled
	f.slot[n] = repl
	return c
}

// HotSpareCluster returns the cards pulled from production so far.
func (f *Fleet) HotSpareCluster() []*Card {
	out := make([]*Card, len(f.hotSpare))
	copy(out, f.hotSpare)
	return out
}

// Cards returns every card currently installed, keyed by node.
func (f *Fleet) Cards() map[topology.NodeID]*Card {
	out := make(map[topology.NodeID]*Card, topology.TotalComputeGPUs)
	for n, c := range f.slot {
		if c != nil {
			out[topology.NodeID(n)] = c
		}
	}
	return out
}

// ManufacturedCount returns how many cards were ever manufactured.
func (f *Fleet) ManufacturedCount() int { return int(f.nextSerial) }
