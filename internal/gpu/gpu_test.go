package gpu

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"titanre/internal/topology"
)

func TestArchitecturalConstants(t *testing.T) {
	if CUDACores != 2688 {
		t.Errorf("CUDACores = %d, want 2688", CUDACores)
	}
	if SMs != 14 {
		t.Errorf("SMs = %d, want 14", SMs)
	}
	if DeviceMemoryBytes != 6<<30 {
		t.Errorf("device memory = %d", DeviceMemoryBytes)
	}
	if L2CacheBytes != 1536<<10 {
		t.Errorf("L2 = %d", L2CacheBytes)
	}
}

func TestProtectionMap(t *testing.T) {
	// Register files, shared memory, L1 and L2 caches and device memory
	// are SECDED protected; the read-only data cache is parity protected.
	want := map[Structure]Protection{
		DeviceMemory:  SECDED,
		L2Cache:       SECDED,
		RegisterFile:  SECDED,
		L1Shared:      SECDED,
		ReadOnlyData:  Parity,
		TextureMemory: SECDED,
	}
	for s, p := range want {
		if got := InfoOf(s).Protection; got != p {
			t.Errorf("%v protection = %v, want %v", s, got, p)
		}
	}
}

func TestInfoOfPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("InfoOf(unknown) should panic")
		}
	}()
	InfoOf(Structure(99))
}

func TestClassify(t *testing.T) {
	if Classify(DeviceMemory, 1) != Corrected {
		t.Error("SBE in device memory must be corrected")
	}
	if Classify(DeviceMemory, 2) != Detected {
		t.Error("DBE in device memory must be detected")
	}
	if Classify(ReadOnlyData, 1) != Detected {
		t.Error("parity structure detects but never corrects")
	}
	if Classify(RegisterFile, 3) != Detected {
		t.Error("multi-bit in SECDED structure must be detected")
	}
}

func TestStringerCoverage(t *testing.T) {
	for _, si := range Structures() {
		if si.Structure.String() == "" || strings.HasPrefix(si.Structure.String(), "Structure(") {
			t.Errorf("missing name for structure %d", int(si.Structure))
		}
	}
	if !strings.HasPrefix(Structure(99).String(), "Structure(") {
		t.Error("unknown structure should render numerically")
	}
	if SECDED.String() != "SECDED ECC" || Parity.String() != "parity" || Unprotected.String() != "unprotected" {
		t.Error("Protection strings wrong")
	}
	if !strings.HasPrefix(Protection(9).String(), "Protection(") {
		t.Error("unknown protection should render numerically")
	}
	for _, o := range []ECCOutcome{Corrected, Detected, Silent} {
		if strings.HasPrefix(o.String(), "ECCOutcome(") {
			t.Errorf("missing name for outcome %d", int(o))
		}
	}
	if !strings.HasPrefix(ECCOutcome(9).String(), "ECCOutcome(") {
		t.Error("unknown outcome should render numerically")
	}
	if Serial(7).String() != "GPU-00000007" {
		t.Errorf("serial format = %q", Serial(7).String())
	}
	if RetiredByDBE.String() == RetiredByTwoSBE.String() {
		t.Error("retire causes must render distinctly")
	}
}

func TestRetirementDisabledBeforeEpoch(t *testing.T) {
	c := NewCard(1)
	if c.RecordSBE(DeviceMemory, 10) {
		t.Error("retirement fired while disabled")
	}
	if c.RecordSBE(DeviceMemory, 10) {
		t.Error("retirement fired while disabled (second SBE)")
	}
	if c.RecordDBE(DeviceMemory, 10, true) {
		t.Error("retirement fired while disabled (DBE)")
	}
	if len(c.Retirement.Retired()) != 0 {
		t.Error("retired pages recorded while disabled")
	}
}

func TestRetirementTwoSBERule(t *testing.T) {
	c := NewCard(1)
	c.Retirement.Enabled = true
	if c.RecordSBE(DeviceMemory, 42) {
		t.Error("first SBE must not retire the page")
	}
	if c.Retirement.PendingSBEPages() != 1 {
		t.Error("page should be pending after first SBE")
	}
	if !c.RecordSBE(DeviceMemory, 42) {
		t.Error("second SBE on same page must retire it")
	}
	got := c.Retirement.Retired()
	if len(got) != 1 || got[0].Page != 42 || got[0].Cause != RetiredByTwoSBE {
		t.Errorf("retired = %+v", got)
	}
	// Further SBEs on the retired page do nothing.
	if c.RecordSBE(DeviceMemory, 42) {
		t.Error("SBE on retired page must not re-retire")
	}
	if c.Retirement.PendingSBEPages() != 0 {
		t.Error("pending set should be clear after retirement")
	}
}

func TestRetirementDBERule(t *testing.T) {
	c := NewCard(1)
	c.Retirement.Enabled = true
	if !c.RecordDBE(DeviceMemory, 7, true) {
		t.Error("DBE must retire its page")
	}
	if got := c.Retirement.Retired(); len(got) != 1 || got[0].Cause != RetiredByDBE {
		t.Errorf("retired = %+v", got)
	}
	if !c.Retirement.IsRetired(7) {
		t.Error("IsRetired(7) = false")
	}
	if c.Retirement.IsRetired(8) {
		t.Error("IsRetired(8) = true")
	}
	if c.RecordDBE(DeviceMemory, 7, true) {
		t.Error("DBE on already-retired page must not fire again")
	}
}

func TestRetirementOnlyDeviceMemory(t *testing.T) {
	c := NewCard(1)
	c.Retirement.Enabled = true
	if c.RecordSBE(L2Cache, 1) || c.RecordSBE(L2Cache, 1) {
		t.Error("L2 SBEs must not trigger page retirement")
	}
	if c.RecordDBE(RegisterFile, 1, true) {
		t.Error("register-file DBE must not trigger page retirement")
	}
}

func TestRetirementSBEThenDBESamePage(t *testing.T) {
	c := NewCard(1)
	c.Retirement.Enabled = true
	c.RecordSBE(DeviceMemory, 5)
	if !c.RecordDBE(DeviceMemory, 5, true) {
		t.Error("DBE after one SBE must retire")
	}
	got := c.Retirement.Retired()
	if len(got) != 1 || got[0].Cause != RetiredByDBE {
		t.Errorf("cause = %+v, want DBE", got)
	}
}

func TestInfoROMLossOnCrash(t *testing.T) {
	c := NewCard(1)
	c.RecordDBE(DeviceMemory, 0, false) // node died before flush
	c.RecordDBE(DeviceMemory, 1, true)
	if c.TrueCounts.TotalDBE() != 2 {
		t.Errorf("true DBE = %d, want 2", c.TrueCounts.TotalDBE())
	}
	if c.InfoROM.TotalDBE() != 1 {
		t.Errorf("InfoROM DBE = %d, want 1 (one record lost)", c.InfoROM.TotalDBE())
	}
}

func TestErrorCountsArithmetic(t *testing.T) {
	var a, b ErrorCounts
	a.SingleBit[DeviceMemory] = 5
	a.DoubleBit[L2Cache] = 2
	b.SingleBit[DeviceMemory] = 3
	b.DoubleBit[L2Cache] = 4
	d := a.Sub(b)
	if d.SingleBit[DeviceMemory] != 2 {
		t.Errorf("sub sbe = %d, want 2", d.SingleBit[DeviceMemory])
	}
	if d.DoubleBit[L2Cache] != 0 {
		t.Errorf("sub must clamp at zero, got %d", d.DoubleBit[L2Cache])
	}
	var sum ErrorCounts
	sum.Add(a)
	sum.Add(b)
	if sum.TotalSBE() != 8 || sum.TotalDBE() != 6 {
		t.Errorf("totals = %d sbe, %d dbe", sum.TotalSBE(), sum.TotalDBE())
	}
}

func TestRetirementStateProperty(t *testing.T) {
	// Property: after any sequence of SBE/DBE page hits, every page is
	// retired at most once, and a page is retired iff it saw a DBE or
	// two or more SBEs while live.
	f := func(ops []uint16) bool {
		var r RetirementState
		r.Enabled = true
		sbe := map[int32]int{}
		dbe := map[int32]bool{}
		for _, op := range ops {
			page := int32(op % 64)
			isDBE := op&0x8000 != 0
			if isDBE {
				r.recordDBE(page)
				if !r.IsRetired(page) {
					return false
				}
				dbe[page] = true
			} else {
				r.recordSBE(page)
				if !r.IsRetired(page) {
					sbe[page]++
				}
			}
		}
		retired := r.Retired()
		seen := map[int32]bool{}
		for _, rp := range retired {
			if seen[rp.Page] {
				return false // retired twice
			}
			seen[rp.Page] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFleetPopulation(t *testing.T) {
	f := NewFleet(4)
	if f.ManufacturedCount() != topology.TotalComputeGPUs+4 {
		t.Errorf("manufactured = %d", f.ManufacturedCount())
	}
	if !f.Populated(0) {
		t.Error("node 0 should hold a card")
	}
	if f.Populated(topology.TotalNodes - 1) {
		t.Error("last service slot should be empty")
	}
	if f.CardAt(-1) != nil || f.CardAt(topology.TotalNodes) != nil {
		t.Error("out-of-range CardAt should be nil")
	}
	if len(f.Cards()) != topology.TotalComputeGPUs {
		t.Errorf("Cards() returned %d entries", len(f.Cards()))
	}
}

func TestFleetHotSpareSwap(t *testing.T) {
	f := NewFleet(1)
	f.SwapThreshold = 2
	n := topology.NodeID(100)
	orig := f.CardAt(n)
	now := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)

	orig.RecordDBE(DeviceMemory, 0, true)
	if got := f.NoteDBE(n, now); got != nil {
		t.Error("swap fired below threshold")
	}
	orig.RecordDBE(DeviceMemory, 1, true)
	got := f.NoteDBE(n, now)
	if got != orig {
		t.Fatalf("swap returned %v, want original card", got)
	}
	if !orig.Retired || !orig.RetiredAt.Equal(now) {
		t.Error("pulled card not marked retired")
	}
	repl := f.CardAt(n)
	if repl == orig || repl == nil {
		t.Fatal("slot not repopulated with a different card")
	}
	if len(f.HotSpareCluster()) != 1 {
		t.Error("hot-spare cluster should hold the pulled card")
	}
	if f.CardBySerial(orig.Serial) != orig {
		t.Error("pulled card must remain findable by serial")
	}
}

func TestFleetSwapManufacturesWhenOutOfSpares(t *testing.T) {
	f := NewFleet(0)
	f.SwapThreshold = 1
	before := f.ManufacturedCount()
	c := f.CardAt(10)
	c.RecordDBE(DeviceMemory, 0, true)
	if f.NoteDBE(10, time.Time{}) == nil {
		t.Fatal("swap should fire at threshold 1")
	}
	if f.ManufacturedCount() != before+1 {
		t.Error("replacement should be freshly manufactured")
	}
}

func TestFleetSwapDisabled(t *testing.T) {
	f := NewFleet(0)
	f.SwapThreshold = 0
	c := f.CardAt(10)
	for i := 0; i < 5; i++ {
		c.RecordDBE(DeviceMemory, int32(i), true)
	}
	if f.NoteDBE(10, time.Time{}) != nil {
		t.Error("swap must not fire when policy disabled")
	}
}

func TestFleetEnableRetirement(t *testing.T) {
	f := NewFleet(2)
	f.EnableRetirement()
	if !f.CardAt(0).Retirement.Enabled {
		t.Error("installed card retirement not enabled")
	}
	// Replacement cards inherit the setting.
	f.SwapThreshold = 1
	f.CardAt(0).RecordDBE(DeviceMemory, 0, true)
	f.NoteDBE(0, time.Time{})
	if !f.CardAt(0).Retirement.Enabled {
		t.Error("replacement card must inherit retirement setting")
	}
}

func TestRetirementBudget(t *testing.T) {
	var r RetirementState
	r.Enabled = true
	if r.Exhausted() || r.Headroom() != MaxRetiredPages {
		t.Fatal("fresh state should have full headroom")
	}
	for p := int32(0); p < MaxRetiredPages; p++ {
		r.recordDBE(p)
	}
	if !r.Exhausted() || r.Headroom() != 0 {
		t.Errorf("exhausted = %v headroom = %d after %d retirements",
			r.Exhausted(), r.Headroom(), MaxRetiredPages)
	}
}
