package gpu

import (
	"fmt"
	"time"
)

// Serial uniquely identifies a physical GPU card across its lifetime. A
// card keeps its serial when it is moved between node slots (e.g. swapped
// into the hot-spare cluster and replaced), which is what lets the study
// distinguish "errors at a location" from "errors on a card".
type Serial uint32

func (s Serial) String() string { return fmt.Sprintf("GPU-%08d", uint32(s)) }

// ECCOutcome is what the protection hardware does with a raw bit fault.
type ECCOutcome int

const (
	// Corrected: SECDED fixed a single bit error; execution continues.
	Corrected ECCOutcome = iota
	// Detected: SECDED (or parity) caught an uncorrectable error; the
	// application is terminated because correct execution can no longer
	// be guaranteed.
	Detected
	// Silent: the fault hit an unprotected structure; it may cause a
	// crash or silent data corruption that ECC accounting never sees.
	Silent
)

func (o ECCOutcome) String() string {
	switch o {
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	case Silent:
		return "silent"
	default:
		return fmt.Sprintf("ECCOutcome(%d)", int(o))
	}
}

// Classify returns the ECC outcome for a raw fault of the given multiplicity
// (1 = single bit upset, >=2 = multi-bit upset) in a structure.
func Classify(s Structure, bits int) ECCOutcome {
	info := InfoOf(s)
	switch info.Protection {
	case SECDED:
		if bits <= 1 {
			return Corrected
		}
		return Detected
	case Parity:
		// Parity detects any odd number of flipped bits but corrects
		// nothing; treat every parity hit as detected.
		return Detected
	default:
		return Silent
	}
}

// ErrorCounts are the aggregate ECC counters a card's InfoROM maintains,
// broken down by structure. nvidia-smi reports these totals; they carry no
// timestamps (the paper's reason SBEs cannot be correlated with console
// events directly).
type ErrorCounts struct {
	SingleBit [NumStructures]int64
	DoubleBit [NumStructures]int64
}

// TotalSBE returns the aggregate single-bit count across structures.
func (c *ErrorCounts) TotalSBE() int64 {
	var t int64
	for _, v := range c.SingleBit {
		t += v
	}
	return t
}

// TotalDBE returns the aggregate double-bit count across structures.
func (c *ErrorCounts) TotalDBE() int64 {
	var t int64
	for _, v := range c.DoubleBit {
		t += v
	}
	return t
}

// Add accumulates other into c.
func (c *ErrorCounts) Add(other ErrorCounts) {
	for i := range c.SingleBit {
		c.SingleBit[i] += other.SingleBit[i]
		c.DoubleBit[i] += other.DoubleBit[i]
	}
}

// Sub returns c minus other, clamping at zero (counters can regress when a
// card is swapped for a spare between snapshots).
func (c ErrorCounts) Sub(other ErrorCounts) ErrorCounts {
	var out ErrorCounts
	for i := range c.SingleBit {
		if d := c.SingleBit[i] - other.SingleBit[i]; d > 0 {
			out.SingleBit[i] = d
		}
		if d := c.DoubleBit[i] - other.DoubleBit[i]; d > 0 {
			out.DoubleBit[i] = d
		}
	}
	return out
}

// Card is the mutable state of one physical K20X board.
type Card struct {
	Serial Serial

	// InfoROM is the persistent error record nvidia-smi queries. It can
	// lag reality: a DBE that takes the node down before the record is
	// flushed is never persisted (the driver bug behind Observation 2).
	InfoROM ErrorCounts

	// TrueCounts is ground truth for every ECC event the card ever saw,
	// used by experiments to quantify logging inconsistency. Operational
	// tooling must use InfoROM instead.
	TrueCounts ErrorCounts

	// Retirement tracks dynamic page retirement state.
	Retirement RetirementState

	// SBECounterBroken reproduces the logging inconsistency the paper
	// could not fully explain: some cards report more double bit errors
	// than single bit errors over the same period. On such cards the
	// InfoROM single-bit counter silently fails to advance while ground
	// truth still accumulates.
	SBECounterBroken bool

	// Retired marks a card pulled from production into the hot-spare
	// cluster after exceeding the DBE threshold.
	Retired bool
	// RetiredAt is when the card was pulled (zero if in service).
	RetiredAt time.Time
	// DBEEvents counts console-visible DBE incidents on this card, used
	// by the hot-spare policy.
	DBEEvents int
}

// NewCard returns a card with a given serial and clean state.
func NewCard(serial Serial) *Card {
	return &Card{Serial: serial}
}

// RecordSBE applies one corrected single-bit error in structure s on page
// page. It updates ground truth, the InfoROM, and the retirement state
// machine, and reports whether the second-SBE-on-a-page retirement rule
// fired.
func (c *Card) RecordSBE(s Structure, page int32) (retired bool) {
	c.TrueCounts.SingleBit[s]++
	if !c.SBECounterBroken {
		c.InfoROM.SingleBit[s]++
	}
	if s == DeviceMemory {
		return c.Retirement.recordSBE(page)
	}
	return false
}

// RecordDBE applies one detected-uncorrectable double-bit error in
// structure s on page page. infoROMFlushed says whether the driver managed
// to persist the incident before the node went down; when false the
// InfoROM counter is not advanced, reproducing the undercount the paper
// observed. It reports whether the one-DBE retirement rule fired.
func (c *Card) RecordDBE(s Structure, page int32, infoROMFlushed bool) (retired bool) {
	c.TrueCounts.DoubleBit[s]++
	c.DBEEvents++
	if infoROMFlushed {
		c.InfoROM.DoubleBit[s]++
	}
	if s == DeviceMemory {
		return c.Retirement.recordDBE(page)
	}
	return false
}
