package predict

import (
	"fmt"
	"time"

	"titanre/internal/console"
	"titanre/internal/topology"
)

// Online warning emission.
//
// Evaluate replays a held-out stream after the fact; a live service needs
// the same decision made one event at a time, as lines arrive. A Warner
// arms a trained model's rule set and turns each precursor occurrence
// into a Warning record immediately — the exact set Evaluate would have
// counted, but available before the target fires, which is the entire
// point of a precursor (the achieved lead time in the paper's related
// work is only useful if the warning is issued online).

// Warning is one issued precursor warning: the model saw a precursor
// event and expects a target on the same node before the deadline.
type Warning struct {
	// Time and Node identify the precursor occurrence that fired the rule.
	Time time.Time
	Node topology.NodeID
	// Precursor is the code that fired; Target and Confidence come from
	// the strongest rule armed for it.
	Precursor  console.EventCode
	Target     console.EventCode
	Confidence float64
	// Deadline is Time + LeadWindow: past it the warning has expired.
	Deadline time.Time
}

func (w Warning) String() string {
	return fmt.Sprintf("[%s] %s: %v observed — %v expected by %s (confidence %.2f)",
		w.Time.UTC().Format("2006-01-02 15:04:05"), topology.CNameOf(w.Node),
		w.Precursor, w.Target, w.Deadline.UTC().Format("15:04:05"), w.Confidence)
}

// Warner feeds events one at a time through a trained model's rule set
// and accumulates the warnings it issues. Feeding a stream event by
// event produces exactly the warnings WarningsOver returns on the same
// slice (see TestWarnerMatchesBatch).
type Warner struct {
	m        *Model
	warnings []Warning
}

// NewWarner arms the model's rules for streaming use.
func NewWarner(m *Model) *Warner { return &Warner{m: m} }

// Feed processes one event, returning the warning it issued (if any).
// Target events themselves never warn; they are what warnings predict.
func (w *Warner) Feed(ev console.Event) (Warning, bool) {
	rules := w.m.rules[ev.Code]
	if len(rules) == 0 {
		return Warning{}, false
	}
	best := rules[0] // rule lists are sorted strongest-first at training
	warn := Warning{
		Time:       ev.Time,
		Node:       ev.Node,
		Precursor:  ev.Code,
		Target:     best.Target,
		Confidence: best.Confidence,
		Deadline:   ev.Time.Add(w.m.cfg.LeadWindow),
	}
	w.warnings = append(w.warnings, warn)
	return warn, true
}

// Warnings returns everything issued so far, in firing order.
func (w *Warner) Warnings() []Warning {
	out := make([]Warning, len(w.warnings))
	copy(out, w.warnings)
	return out
}

// WarningsOver is the batch form: the warnings a Warner issues over a
// whole time-ordered stream. It emits a warning for exactly the events
// Evaluate counts in Evaluation.Warnings.
func (m *Model) WarningsOver(events []console.Event) []Warning {
	w := NewWarner(m)
	for _, ev := range events {
		w.Feed(ev)
	}
	return w.warnings
}
