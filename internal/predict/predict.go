// Package predict implements precursor-based failure prediction over
// console event streams — the application Observation 9 points at:
// "correlation analysis between different types of errors helps us
// understand which errors are more likely to be followed by another type
// of error, which errors occur in isolation and may not have precursor
// events". The related work the paper cites (Fu/Xu, Gainaru et al.,
// Liang et al.) mines exactly such precursor rules from RAS logs.
//
// The model is deliberately simple and auditable: for every (precursor
// code, target code) pair it estimates on a training split the
// probability that a target event hits the same node within a lead
// window after a precursor event; rules above a confidence/support
// threshold become warnings. Evaluation on a held-out split reports
// precision, recall, and achieved lead time.
//
// On the synthetic Titan data the model reproduces the paper's
// punchline: driver follow-ons (XID 43/45) are predictable from XID
// 13/48, while the fatal hardware events themselves (DBE, off-the-bus)
// are isolated and have no console precursors.
package predict

import (
	"fmt"
	"sort"
	"time"

	"titanre/internal/console"
	"titanre/internal/topology"
	"titanre/internal/xid"
)

// Config controls training and evaluation.
type Config struct {
	// Targets are the codes worth predicting (e.g. fatal interrupts).
	Targets []xid.Code
	// LeadWindow is how far ahead a warning extends.
	LeadWindow time.Duration
	// MinSupport is the minimum number of precursor occurrences needed
	// before a rule is trusted.
	MinSupport int
	// MinConfidence is the minimum conditional probability for a rule.
	MinConfidence float64
}

// DefaultConfig targets the crash-causing driver follow-ons with a
// ten-minute lead window.
func DefaultConfig() Config {
	return Config{
		Targets:       []xid.Code{xid.GPUStoppedProcessing, xid.PreemptiveCleanup},
		LeadWindow:    10 * time.Minute,
		MinSupport:    20,
		MinConfidence: 0.25,
	}
}

// Rule is one learned precursor relation.
type Rule struct {
	Precursor  xid.Code
	Target     xid.Code
	Confidence float64
	Support    int
	MeanLead   time.Duration
}

func (r Rule) String() string {
	return fmt.Sprintf("%v -> %v within lead window: confidence %.2f (support %d, mean lead %v)",
		r.Precursor, r.Target, r.Confidence, r.Support, r.MeanLead.Round(time.Second))
}

// Model holds the learned rule set.
type Model struct {
	cfg   Config
	rules map[xid.Code][]Rule // by precursor
}

// Train learns rules from a time-ordered training stream.
func Train(events []console.Event, cfg Config) *Model {
	targets := make(map[xid.Code]bool, len(cfg.Targets))
	for _, t := range cfg.Targets {
		targets[t] = true
	}
	type key struct {
		precursor, target xid.Code
	}
	hits := map[key]int{}
	leads := map[key]time.Duration{}
	support := map[xid.Code]int{}

	// Per-node forward matching: for each precursor occurrence, find the
	// first same-node target within the window. A per-node pending list
	// keeps this linear in practice.
	type pending struct {
		at   time.Time
		code xid.Code
	}
	open := map[topology.NodeID][]pending{}
	for _, e := range events {
		if targets[e.Code] {
			// Resolve pending precursors on this node.
			kept := open[e.Node][:0]
			for _, p := range open[e.Node] {
				d := e.Time.Sub(p.at)
				if d > cfg.LeadWindow {
					continue // expired
				}
				k := key{p.code, e.Code}
				hits[k]++
				leads[k] += d
				// A precursor predicts at most one target occurrence
				// per target code; keep it pending for other targets.
				kept = append(kept, p)
			}
			open[e.Node] = kept
			continue
		}
		// Expire and record the precursor occurrence.
		kept := open[e.Node][:0]
		for _, p := range open[e.Node] {
			if e.Time.Sub(p.at) <= cfg.LeadWindow {
				kept = append(kept, p)
			}
		}
		open[e.Node] = append(kept, pending{at: e.Time, code: e.Code})
		support[e.Code]++
	}

	m := &Model{cfg: cfg, rules: map[xid.Code][]Rule{}}
	for k, h := range hits {
		sup := support[k.precursor]
		if sup < cfg.MinSupport {
			continue
		}
		conf := float64(h) / float64(sup)
		if conf < cfg.MinConfidence {
			continue
		}
		m.rules[k.precursor] = append(m.rules[k.precursor], Rule{
			Precursor:  k.precursor,
			Target:     k.target,
			Confidence: conf,
			Support:    sup,
			MeanLead:   leads[k] / time.Duration(h),
		})
	}
	for _, rs := range m.rules {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Confidence > rs[j].Confidence })
	}
	return m
}

// Rules returns every learned rule, strongest first.
func (m *Model) Rules() []Rule {
	var out []Rule
	for _, rs := range m.rules {
		out = append(out, rs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Precursor != out[j].Precursor {
			return out[i].Precursor < out[j].Precursor
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// Warns reports whether the model issues any warning on seeing code.
func (m *Model) Warns(code xid.Code) bool { return len(m.rules[code]) > 0 }

// Evaluation summarizes held-out performance.
type Evaluation struct {
	// Warnings issued, and how many were followed by a target on the
	// same node within the window (true positives).
	Warnings      int
	TruePositives int
	// TargetEvents and how many were covered by at least one earlier
	// warning.
	TargetEvents int
	Covered      int
	// MeanLead is the average warning lead time over covered targets.
	MeanLead time.Duration
}

// Precision is TP/warnings (0 when no warnings).
func (ev Evaluation) Precision() float64 {
	if ev.Warnings == 0 {
		return 0
	}
	return float64(ev.TruePositives) / float64(ev.Warnings)
}

// Recall is covered/targets (0 when no targets).
func (ev Evaluation) Recall() float64 {
	if ev.TargetEvents == 0 {
		return 0
	}
	return float64(ev.Covered) / float64(ev.TargetEvents)
}

// Evaluate replays a held-out stream and scores the model.
func (m *Model) Evaluate(events []console.Event) Evaluation {
	targets := make(map[xid.Code]bool, len(m.cfg.Targets))
	for _, t := range m.cfg.Targets {
		targets[t] = true
	}
	type warning struct {
		at  time.Time
		hit bool
	}
	open := map[topology.NodeID][]*warning{}
	var ev Evaluation
	var leadSum time.Duration

	flushExpired := func(n topology.NodeID, now time.Time) {
		kept := open[n][:0]
		for _, w := range open[n] {
			if now.Sub(w.at) <= m.cfg.LeadWindow {
				kept = append(kept, w)
				continue
			}
			if w.hit {
				ev.TruePositives++
			}
		}
		open[n] = kept
	}

	for _, e := range events {
		flushExpired(e.Node, e.Time)
		if targets[e.Code] {
			ev.TargetEvents++
			covered := false
			for _, w := range open[e.Node] {
				if !covered {
					leadSum += e.Time.Sub(w.at)
				}
				covered = true
				w.hit = true
			}
			if covered {
				ev.Covered++
			}
			continue
		}
		if m.Warns(e.Code) {
			ev.Warnings++
			open[e.Node] = append(open[e.Node], &warning{at: e.Time})
		}
	}
	// Flush everything still pending.
	for _, ws := range open {
		for _, w := range ws {
			if w.hit {
				ev.TruePositives++
			}
		}
	}
	if ev.Covered > 0 {
		ev.MeanLead = leadSum / time.Duration(ev.Covered)
	}
	return ev
}

// SplitByTime partitions a time-ordered stream at the given fraction of
// its span, returning train and test halves (the standard evaluation
// protocol for log-based prediction).
func SplitByTime(events []console.Event, frac float64) (train, test []console.Event) {
	if len(events) == 0 {
		return nil, nil
	}
	span := events[len(events)-1].Time.Sub(events[0].Time)
	cut := events[0].Time.Add(time.Duration(float64(span) * frac))
	for i, e := range events {
		if e.Time.After(cut) {
			return events[:i], events[i:]
		}
	}
	return events, nil
}
