package predict

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestWarnerMatchesBatch: feeding a stream one event at a time issues
// byte-identical warnings to the batch form, and the count agrees with
// what Evaluate books as issued warnings on the same stream.
func TestWarnerMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := stream(rng, 800, 0.6)
	train, test := SplitByTime(events, 0.5)
	m := Train(train, testConfig())
	if len(m.Rules()) == 0 {
		t.Fatal("no rules learned; test stream too weak")
	}

	batch := m.WarningsOver(test)

	w := NewWarner(m)
	var incremental []Warning
	for _, ev := range test {
		if warn, ok := w.Feed(ev); ok {
			incremental = append(incremental, warn)
		}
	}
	if !reflect.DeepEqual(incremental, batch) {
		t.Fatalf("incremental warnings diverge from batch: %d vs %d", len(incremental), len(batch))
	}
	if !reflect.DeepEqual(w.Warnings(), batch) {
		t.Fatal("Warner.Warnings() diverges from batch")
	}
	for i := range batch {
		if incremental[i].String() != batch[i].String() {
			t.Fatalf("warning %d renders differently: %q vs %q", i, incremental[i], batch[i])
		}
	}

	ev := m.Evaluate(test)
	if ev.Warnings != len(batch) {
		t.Fatalf("Evaluate booked %d warnings, Warner issued %d", ev.Warnings, len(batch))
	}
	if len(batch) == 0 {
		t.Fatal("no warnings issued over the held-out half")
	}

	// Warnings predict the strongest rule's target and carry its deadline.
	for _, warn := range batch {
		if warn.Precursor != 13 || warn.Target != 43 {
			t.Fatalf("unexpected rule on warning: %+v", warn)
		}
		if got := warn.Deadline.Sub(warn.Time); got != testConfig().LeadWindow {
			t.Fatalf("deadline offset = %v, want %v", got, testConfig().LeadWindow)
		}
	}
}
