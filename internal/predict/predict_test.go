package predict

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"titanre/internal/console"
	"titanre/internal/topology"
	"titanre/internal/xid"
)

var t0 = time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)

func ev(minutes float64, code xid.Code, node topology.NodeID) console.Event {
	return console.Event{
		Time: t0.Add(time.Duration(minutes * float64(time.Minute))),
		Code: code, Node: node, Page: console.NoPage,
	}
}

// stream builds a synthetic log where code 13 is followed by code 43 on
// the same node with the given probability after ~2 minutes.
func stream(rng *rand.Rand, n int, followProb float64) []console.Event {
	var out []console.Event
	minutes := 0.0
	for i := 0; i < n; i++ {
		minutes += 30
		node := topology.NodeID(rng.Intn(1000))
		out = append(out, ev(minutes, 13, node))
		if rng.Float64() < followProb {
			out = append(out, ev(minutes+2, 43, node))
		}
	}
	return out
}

func testConfig() Config {
	return Config{
		Targets:       []xid.Code{43},
		LeadWindow:    10 * time.Minute,
		MinSupport:    10,
		MinConfidence: 0.25,
	}
}

func TestTrainLearnsRule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	events := stream(rng, 500, 0.6)
	m := Train(events, testConfig())
	rules := m.Rules()
	if len(rules) != 1 {
		t.Fatalf("learned %d rules, want 1: %v", len(rules), rules)
	}
	r := rules[0]
	if r.Precursor != 13 || r.Target != 43 {
		t.Errorf("rule = %v", r)
	}
	if r.Confidence < 0.5 || r.Confidence > 0.7 {
		t.Errorf("confidence = %v, want ~0.6", r.Confidence)
	}
	if r.MeanLead < time.Minute || r.MeanLead > 4*time.Minute {
		t.Errorf("mean lead = %v, want ~2 min", r.MeanLead)
	}
	if !m.Warns(13) || m.Warns(31) {
		t.Error("warning predicate wrong")
	}
}

func TestTrainRespectsThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Below min support.
	m := Train(stream(rng, 5, 1.0), testConfig())
	if len(m.Rules()) != 0 {
		t.Error("low-support rule should be rejected")
	}
	// Below min confidence.
	m = Train(stream(rng, 500, 0.05), testConfig())
	if len(m.Rules()) != 0 {
		t.Error("low-confidence rule should be rejected")
	}
}

func TestIsolatedTargetHasNoPrecursor(t *testing.T) {
	// DBEs dropped at random nodes/times have no precursors; the model
	// must learn nothing when targeting them.
	rng := rand.New(rand.NewSource(3))
	var events []console.Event
	minutes := 0.0
	for i := 0; i < 300; i++ {
		minutes += 45
		events = append(events, ev(minutes, 44, topology.NodeID(rng.Intn(1000))))
		minutes += 45
		events = append(events, ev(minutes, 48, topology.NodeID(rng.Intn(1000))))
	}
	cfg := testConfig()
	cfg.Targets = []xid.Code{48}
	m := Train(events, cfg)
	if len(m.Rules()) != 0 {
		t.Errorf("learned phantom rules for isolated DBEs: %v", m.Rules())
	}
}

func TestEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	all := stream(rng, 2000, 0.6)
	train, test := SplitByTime(all, 0.5)
	if len(train) == 0 || len(test) == 0 {
		t.Fatal("split failed")
	}
	m := Train(train, testConfig())
	evl := m.Evaluate(test)
	if evl.Warnings == 0 || evl.TargetEvents == 0 {
		t.Fatalf("degenerate evaluation: %+v", evl)
	}
	// Warnings fire on every 13; 60% are followed by 43.
	if p := evl.Precision(); p < 0.45 || p > 0.75 {
		t.Errorf("precision = %v, want ~0.6", p)
	}
	// Every 43 is preceded by a 13 here.
	if r := evl.Recall(); r < 0.95 {
		t.Errorf("recall = %v, want ~1", r)
	}
	if evl.MeanLead < time.Minute || evl.MeanLead > 4*time.Minute {
		t.Errorf("mean lead = %v", evl.MeanLead)
	}
}

func TestEvaluateNoWarningsOnUnknownCodes(t *testing.T) {
	m := Train(nil, testConfig())
	evl := m.Evaluate([]console.Event{ev(0, 13, 1), ev(1, 43, 1)})
	if evl.Warnings != 0 {
		t.Error("untrained model must not warn")
	}
	if evl.TargetEvents != 1 || evl.Covered != 0 {
		t.Errorf("target accounting wrong: %+v", evl)
	}
	if evl.Precision() != 0 || evl.Recall() != 0 {
		t.Error("degenerate rates should be 0")
	}
}

func TestCrossNodeDoesNotCount(t *testing.T) {
	// Precursor on node 1, target on node 2: no rule.
	var events []console.Event
	for i := 0; i < 100; i++ {
		events = append(events, ev(float64(i*30), 13, 1))
		events = append(events, ev(float64(i*30)+2, 43, 2))
	}
	m := Train(events, testConfig())
	if len(m.Rules()) != 0 {
		t.Errorf("cross-node rule learned: %v", m.Rules())
	}
}

func TestWindowExpiry(t *testing.T) {
	// Target arrives 30 minutes after the precursor: outside the
	// ten-minute lead window.
	var events []console.Event
	for i := 0; i < 100; i++ {
		base := float64(i * 120)
		events = append(events, ev(base, 13, 5))
		events = append(events, ev(base+30, 43, 5))
	}
	m := Train(events, testConfig())
	if len(m.Rules()) != 0 {
		t.Errorf("expired-window rule learned: %v", m.Rules())
	}
}

func TestSplitByTime(t *testing.T) {
	events := []console.Event{ev(0, 13, 1), ev(10, 13, 2), ev(20, 13, 3), ev(30, 13, 4)}
	train, test := SplitByTime(events, 0.5)
	if len(train) != 2 || len(test) != 2 {
		t.Errorf("split = %d/%d", len(train), len(test))
	}
	tr, te := SplitByTime(nil, 0.5)
	if tr != nil || te != nil {
		t.Error("empty split should be nil")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Precursor: 13, Target: 43, Confidence: 0.55, Support: 100, MeanLead: 90 * time.Second}
	s := r.String()
	for _, want := range []string{"XID 13", "XID 43", "0.55", "100"} {
		if !strings.Contains(s, want) {
			t.Errorf("rule string missing %q: %s", want, s)
		}
	}
}
