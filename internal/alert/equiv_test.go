package alert

import (
	"math/rand"
	"testing"
	"time"

	"titanre/internal/console"
	"titanre/internal/gpu"
	"titanre/internal/topology"
	"titanre/internal/xid"
)

// TestStreamMatchesBatch: an engine fed one event at a time — in
// arbitrary chunk sizes, the way a streaming service delivers them —
// raises byte-identical alerts to a batch Run over the same stream. The
// stream exercises all four detectors.
func TestStreamMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var events []console.Event
	at := t0
	for i := 0; i < 4000; i++ {
		at = at.Add(time.Duration(5+rng.Intn(90)) * time.Minute)
		node := topology.NodeID(rng.Intn(200))
		serial := gpu.Serial(1000 + rng.Intn(40))
		job := console.JobID(1 + rng.Intn(500))
		var code xid.Code
		switch rng.Intn(10) {
		case 0:
			code = xid.DoubleBitError
		case 1:
			code = xid.OffTheBus
		case 2, 3, 4:
			code = xid.GraphicsEngineException // app-class, feeds SuspectNode
		default:
			code = []xid.Code{31, 32, 43, 44, 45, 57, 59, 62}[rng.Intn(8)]
		}
		events = append(events, console.Event{
			Time: at, Node: node, Serial: serial, Code: code,
			Job: job, Page: console.NoPage,
		})
	}

	batch := NewEngine(DefaultConfig())
	batch.Run(events)
	want := batch.Alerts()
	if len(want) == 0 {
		t.Fatal("batch run raised no alerts; stream too weak to test equivalence")
	}

	stream := NewEngine(DefaultConfig())
	for off := 0; off < len(events); {
		n := 1 + rng.Intn(97)
		if off+n > len(events) {
			n = len(events) - off
		}
		for _, ev := range events[off : off+n] {
			stream.Feed(ev)
		}
		off += n
	}
	got := stream.Alerts()
	if len(got) != len(want) {
		t.Fatalf("stream raised %d alerts, batch %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Fatalf("alert %d diverges:\n  stream: %s\n  batch:  %s", i, got[i], want[i])
		}
	}
}
