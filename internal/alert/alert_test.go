package alert

import (
	"strings"
	"testing"
	"time"

	"titanre/internal/console"
	"titanre/internal/gpu"
	"titanre/internal/topology"
	"titanre/internal/xid"
)

var t0 = time.Date(2013, 9, 1, 0, 0, 0, 0, time.UTC)

func ev(hours float64, code xid.Code, node topology.NodeID, serial gpu.Serial, job console.JobID) console.Event {
	return console.Event{
		Time: t0.Add(time.Duration(hours * float64(time.Hour))),
		Code: code, Node: node, Serial: serial, Job: job, Page: console.NoPage,
	}
}

func quietConfig() Config {
	return Config{
		DBEThreshold: 2,
		BurstWindow:  24 * time.Hour,
		BurstCount:   3,
		BurstCodes:   []xid.Code{xid.OffTheBus},
		SuspectJobs:  3,
		NewCodes:     false,
	}
}

func TestCardDBEThreshold(t *testing.T) {
	e := NewEngine(quietConfig())
	e.Feed(ev(0, xid.DoubleBitError, 10, 77, 1))
	if len(e.OfKind(CardDBEThreshold)) != 0 {
		t.Fatal("fired below threshold")
	}
	e.Feed(ev(100, xid.DoubleBitError, 10, 77, 2))
	got := e.OfKind(CardDBEThreshold)
	if len(got) != 1 {
		t.Fatalf("alerts = %d, want 1", len(got))
	}
	if got[0].Serial != 77 || got[0].Count != 2 {
		t.Errorf("alert = %+v", got[0])
	}
	// No duplicate alert on the third DBE.
	e.Feed(ev(200, xid.DoubleBitError, 10, 77, 3))
	if len(e.OfKind(CardDBEThreshold)) != 1 {
		t.Error("duplicate card alert")
	}
	// A different card alerts independently.
	e.Feed(ev(300, xid.DoubleBitError, 11, 88, 4))
	e.Feed(ev(301, xid.DoubleBitError, 11, 88, 5))
	if len(e.OfKind(CardDBEThreshold)) != 2 {
		t.Error("second card did not alert")
	}
}

func TestBurstDetection(t *testing.T) {
	e := NewEngine(quietConfig())
	// Two OTBs in a day: quiet.
	e.Feed(ev(0, xid.OffTheBus, 1, 1, 0))
	e.Feed(ev(5, xid.OffTheBus, 2, 2, 0))
	if len(e.OfKind(Burst)) != 0 {
		t.Fatal("premature burst alert")
	}
	// Third within the window: alert.
	e.Feed(ev(10, xid.OffTheBus, 3, 3, 0))
	if len(e.OfKind(Burst)) != 1 {
		t.Fatal("burst not detected")
	}
	// Continued storm inside the mute window: no spam.
	e.Feed(ev(11, xid.OffTheBus, 4, 4, 0))
	e.Feed(ev(12, xid.OffTheBus, 5, 5, 0))
	if len(e.OfKind(Burst)) != 1 {
		t.Error("burst alert spammed")
	}
	// A separate storm much later re-alerts.
	e.Feed(ev(500, xid.OffTheBus, 6, 6, 0))
	e.Feed(ev(501, xid.OffTheBus, 7, 7, 0))
	e.Feed(ev(502, xid.OffTheBus, 8, 8, 0))
	if len(e.OfKind(Burst)) != 2 {
		t.Error("second storm not re-alerted")
	}
	// Codes outside BurstCodes never burst-alert.
	for i := 0; i < 10; i++ {
		e.Feed(ev(600+float64(i)/10, 44, 9, 9, 0))
	}
	if len(e.OfKind(Burst)) != 2 {
		t.Error("non-burstable code alerted")
	}
}

func TestBurstWindowExpiry(t *testing.T) {
	e := NewEngine(quietConfig())
	// Three OTBs spread over three days: never three in one window.
	e.Feed(ev(0, xid.OffTheBus, 1, 1, 0))
	e.Feed(ev(30, xid.OffTheBus, 2, 2, 0))
	e.Feed(ev(60, xid.OffTheBus, 3, 3, 0))
	if len(e.OfKind(Burst)) != 0 {
		t.Error("stale events counted toward burst")
	}
}

func TestNewCodeAlert(t *testing.T) {
	cfg := quietConfig()
	cfg.NewCodes = true
	e := NewEngine(cfg)
	e.Feed(ev(0, 13, 1, 1, 1))
	e.Feed(ev(1, 13, 2, 2, 2))
	e.Feed(ev(2, xid.ECCPageRetirement, 3, 3, 0))
	got := e.OfKind(NewCode)
	if len(got) != 2 {
		t.Fatalf("new-code alerts = %d, want 2 (13 and 63)", len(got))
	}
	if !strings.Contains(got[1].Detail, "SEC rules") {
		t.Errorf("detail = %q", got[1].Detail)
	}
}

func TestSuspectNodeObservation8(t *testing.T) {
	e := NewEngine(quietConfig())
	// XID 13 on the same node across three distinct jobs: suspect.
	e.Feed(ev(0, 13, 42, 9, 101))
	e.Feed(ev(10, 13, 42, 9, 102))
	if len(e.OfKind(SuspectNode)) != 0 {
		t.Fatal("premature suspect alert")
	}
	e.Feed(ev(20, 13, 42, 9, 103))
	got := e.OfKind(SuspectNode)
	if len(got) != 1 {
		t.Fatalf("suspect alerts = %d, want 1", len(got))
	}
	if got[0].Node != 42 || got[0].Count != 3 {
		t.Errorf("alert = %+v", got[0])
	}
	if !strings.Contains(got[0].Detail, "Observation 8") {
		t.Errorf("detail = %q", got[0].Detail)
	}
	// Repeats on the same job do not count twice.
	e2 := NewEngine(quietConfig())
	for i := 0; i < 10; i++ {
		e2.Feed(ev(float64(i), 13, 42, 9, 101))
	}
	if len(e2.OfKind(SuspectNode)) != 0 {
		t.Error("same-job repeats must not make a node suspect")
	}
	// Driver codes never mark a node suspect.
	e3 := NewEngine(quietConfig())
	for j := 0; j < 5; j++ {
		e3.Feed(ev(float64(j), 44, 42, 9, console.JobID(200+j)))
	}
	if len(e3.OfKind(SuspectNode)) != 0 {
		t.Error("driver-only code marked node suspect")
	}
}

func TestRunAndStrings(t *testing.T) {
	cfg := DefaultConfig()
	e := NewEngine(cfg)
	var events []console.Event
	for i := 0; i < 10; i++ {
		events = append(events, ev(float64(i)/2, xid.OffTheBus, topology.NodeID(i), gpu.Serial(i+1), 0))
	}
	e.Run(events)
	alerts := e.Alerts()
	if len(alerts) == 0 {
		t.Fatal("no alerts from an OTB storm under default config")
	}
	for _, a := range alerts {
		if a.String() == "" || a.Kind.String() == "" {
			t.Fatal("alert rendering broken")
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind string wrong")
	}
}

func TestSuspectNodeIgnoresPropagation(t *testing.T) {
	// Observation 7: one incident is reported on every node of the job.
	// Only the faulting node (first report) may accumulate suspicion;
	// the propagated copies must not make innocent nodes suspect.
	e := NewEngine(quietConfig())
	for job := console.JobID(1); job <= 10; job++ {
		// Faulting node 42 logs first, then the storm on nodes 100..110.
		e.Feed(ev(float64(job)*10, 13, 42, 9, job))
		for n := topology.NodeID(100); n < 110; n++ {
			e.Feed(ev(float64(job)*10+0.001, 13, n, gpu.Serial(n), job))
		}
	}
	got := e.OfKind(SuspectNode)
	if len(got) != 1 {
		t.Fatalf("suspect alerts = %d, want only the faulting node", len(got))
	}
	if got[0].Node != 42 {
		t.Errorf("suspect node = %d, want 42", got[0].Node)
	}
}
