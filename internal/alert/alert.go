// Package alert is the streaming side of the operation: detectors that
// consume the console event stream in time order and raise the alerts
// Titan's operators acted on in the paper —
//
//   - a card crossing the DBE threshold (the hot-spare pull decision);
//   - an error-class burst (how "the criticality of the [off-the-bus]
//     issue was identified" before the soldering fix);
//   - a code appearing for the first time (Observation 5: new XIDs demand
//     new SEC rules);
//   - a node repeating an application-class error across many distinct
//     jobs (Observation 8: hardware masquerading as application error —
//     the case where OLCF "did not take the node down immediately"
//     because XID 13 was assumed to be software).
//
// Detectors are deliberately simple sliding-window rules: auditable,
// deterministic, and cheap enough to run inline with SEC.
package alert

import (
	"fmt"
	"time"

	"titanre/internal/console"
	"titanre/internal/gpu"
	"titanre/internal/topology"
	"titanre/internal/xid"
)

// Kind labels an alert.
type Kind int

const (
	// CardDBEThreshold fires when one card accumulates the configured
	// number of double bit errors.
	CardDBEThreshold Kind = iota
	// Burst fires when an error class exceeds its burst threshold
	// within the window.
	Burst
	// NewCode fires the first time a code is seen.
	NewCode
	// SuspectNode fires when a node reports an application-class error
	// across enough distinct jobs.
	SuspectNode
)

func (k Kind) String() string {
	switch k {
	case CardDBEThreshold:
		return "card-dbe-threshold"
	case Burst:
		return "burst"
	case NewCode:
		return "new-code"
	case SuspectNode:
		return "suspect-node"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Alert is one raised condition.
type Alert struct {
	Kind   Kind
	Time   time.Time
	Code   xid.Code
	Node   topology.NodeID
	Serial gpu.Serial
	Count  int
	Detail string
}

func (a Alert) String() string {
	return fmt.Sprintf("[%s] %s %s: %s",
		a.Time.UTC().Format("2006-01-02 15:04:05"), a.Kind, a.Code, a.Detail)
}

// Config tunes the detectors.
type Config struct {
	// DBEThreshold pulls a card after this many DBEs (0 disables).
	DBEThreshold int
	// BurstWindow and BurstCount: an alert when a code logs BurstCount
	// incidents within BurstWindow (incident filtering is the caller's
	// job; feed filtered streams for application codes).
	BurstWindow time.Duration
	BurstCount  int
	// BurstCodes limits burst detection to these codes (nil = all).
	BurstCodes []xid.Code
	// SuspectJobs: a node is suspect after application-class errors in
	// this many distinct jobs (0 disables).
	SuspectJobs int
	// NewCodes enables first-appearance alerts.
	NewCodes bool
}

// DefaultConfig mirrors OLCF's practices in the paper. The suspect-node
// threshold is deliberately high: buggy debug jobs fault on whichever of
// their nodes loses the race, and first-fit placement re-lands debug
// workloads on the same region, so a low threshold drowns the one real
// Observation 8 node in coincidences.
func DefaultConfig() Config {
	return Config{
		DBEThreshold: 2,
		BurstWindow:  24 * time.Hour,
		BurstCount:   8,
		BurstCodes:   []xid.Code{xid.OffTheBus, xid.DoubleBitError},
		SuspectJobs:  10,
		NewCodes:     true,
	}
}

// Engine consumes events in time order and accumulates alerts.
type Engine struct {
	cfg    Config
	alerts []Alert

	dbePerCard   map[gpu.Serial]int
	dbeAlerted   map[gpu.Serial]bool
	seenCodes    map[xid.Code]bool
	burstable    map[xid.Code]bool
	recent       map[xid.Code][]time.Time
	burstMuted   map[xid.Code]time.Time
	suspectJobs  map[topology.NodeID]map[console.JobID]bool
	suspectFired map[topology.NodeID]bool
	// incidentSeen dedups application-error incidents: the paper shows
	// the error is reported on every node of the job (Observation 7),
	// so only the first report of a (code, job) pair — the faulting
	// node, which logs first — counts toward suspicion.
	incidentSeen map[incidentKey]bool
}

type incidentKey struct {
	code xid.Code
	job  console.JobID
}

// NewEngine builds an engine.
func NewEngine(cfg Config) *Engine {
	e := &Engine{
		cfg:          cfg,
		dbePerCard:   map[gpu.Serial]int{},
		dbeAlerted:   map[gpu.Serial]bool{},
		seenCodes:    map[xid.Code]bool{},
		recent:       map[xid.Code][]time.Time{},
		burstMuted:   map[xid.Code]time.Time{},
		suspectJobs:  map[topology.NodeID]map[console.JobID]bool{},
		suspectFired: map[topology.NodeID]bool{},
		incidentSeen: map[incidentKey]bool{},
	}
	if cfg.BurstCodes != nil {
		e.burstable = map[xid.Code]bool{}
		for _, c := range cfg.BurstCodes {
			e.burstable[c] = true
		}
	}
	return e
}

// Feed processes one event.
func (e *Engine) Feed(ev console.Event) {
	if e.cfg.NewCodes && !e.seenCodes[ev.Code] {
		e.seenCodes[ev.Code] = true
		e.raise(Alert{
			Kind: NewCode, Time: ev.Time, Code: ev.Code, Node: ev.Node,
			Detail: fmt.Sprintf("first occurrence of %s — check SEC rules cover it", ev.Code),
		})
	}

	if e.cfg.DBEThreshold > 0 && ev.Code == xid.DoubleBitError {
		e.dbePerCard[ev.Serial]++
		if e.dbePerCard[ev.Serial] >= e.cfg.DBEThreshold && !e.dbeAlerted[ev.Serial] {
			e.dbeAlerted[ev.Serial] = true
			e.raise(Alert{
				Kind: CardDBEThreshold, Time: ev.Time, Code: ev.Code,
				Node: ev.Node, Serial: ev.Serial, Count: e.dbePerCard[ev.Serial],
				Detail: fmt.Sprintf("card %s reached %d DBEs — pull to hot-spare cluster", ev.Serial, e.dbePerCard[ev.Serial]),
			})
		}
	}

	if e.cfg.BurstCount > 0 && e.cfg.BurstWindow > 0 && (e.burstable == nil || e.burstable[ev.Code]) {
		times := append(e.recent[ev.Code], ev.Time)
		cutoff := ev.Time.Add(-e.cfg.BurstWindow)
		keep := times[:0]
		for _, t := range times {
			if t.After(cutoff) {
				keep = append(keep, t)
			}
		}
		e.recent[ev.Code] = keep
		if len(keep) >= e.cfg.BurstCount {
			// Mute repeat alerts for a window after firing.
			if muted, ok := e.burstMuted[ev.Code]; !ok || ev.Time.Sub(muted) > e.cfg.BurstWindow {
				e.burstMuted[ev.Code] = ev.Time
				e.raise(Alert{
					Kind: Burst, Time: ev.Time, Code: ev.Code, Node: ev.Node, Count: len(keep),
					Detail: fmt.Sprintf("%d %s events within %v — systemic issue?", len(keep), ev.Code, e.cfg.BurstWindow),
				})
			}
		}
	}

	if e.cfg.SuspectJobs > 0 && ev.Job != 0 {
		if info, ok := xid.Lookup(ev.Code); ok && info.AppRelated {
			k := incidentKey{ev.Code, ev.Job}
			if e.incidentSeen[k] {
				return // job-wide propagation, not the faulting node
			}
			e.incidentSeen[k] = true
			jobs := e.suspectJobs[ev.Node]
			if jobs == nil {
				jobs = map[console.JobID]bool{}
				e.suspectJobs[ev.Node] = jobs
			}
			jobs[ev.Job] = true
			if len(jobs) >= e.cfg.SuspectJobs && !e.suspectFired[ev.Node] {
				e.suspectFired[ev.Node] = true
				e.raise(Alert{
					Kind: SuspectNode, Time: ev.Time, Code: ev.Code, Node: ev.Node,
					Serial: ev.Serial, Count: len(jobs),
					Detail: fmt.Sprintf("node %s reported %s across %d distinct jobs — likely hardware despite the app-error code (Observation 8)",
						topology.LocationOf(ev.Node).CName(), ev.Code, len(jobs)),
				})
			}
		}
	}
}

// Run feeds a whole ordered stream.
func (e *Engine) Run(events []console.Event) {
	for _, ev := range events {
		e.Feed(ev)
	}
}

// Alerts returns everything raised so far, in firing order.
func (e *Engine) Alerts() []Alert {
	out := make([]Alert, len(e.alerts))
	copy(out, e.alerts)
	return out
}

// Count returns how many alerts have been raised so far, without
// copying the backing slice — cheap enough for per-event bookkeeping on
// a streaming path.
func (e *Engine) Count() int { return len(e.alerts) }

// OfKind filters the raised alerts.
func (e *Engine) OfKind(k Kind) []Alert {
	var out []Alert
	for _, a := range e.alerts {
		if a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

func (e *Engine) raise(a Alert) { e.alerts = append(e.alerts, a) }
