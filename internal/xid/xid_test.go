package xid

import (
	"strings"
	"testing"
)

func TestCatalogComplete(t *testing.T) {
	// Every code named in the paper's tables must be present.
	want := []Code{
		SingleBitError, OffTheBus,
		13, 31, 32, 38, 42, 43, 44, 45, 48, 56, 57, 58, 59, 62, 63, 64, 65,
	}
	for _, c := range want {
		if !Known(c) {
			t.Errorf("code %v missing from catalog", c)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("catalog has %d entries, want %d", len(All()), len(want))
	}
}

func TestHardwareTableMatchesPaperTable1(t *testing.T) {
	// Table 1: SBE, DBE(48), OTB, 56, 57, 58, 63, 64, 65.
	want := map[Code]bool{
		SingleBitError: true, DoubleBitError: true, OffTheBus: true,
		56: true, 57: true, 58: true, 63: true, 64: true, 65: true,
	}
	got := HardwareTable()
	if len(got) != len(want) {
		t.Fatalf("hardware table has %d entries, want %d: %v", len(got), len(want), got)
	}
	for _, info := range got {
		if !want[info.Code] {
			t.Errorf("unexpected hardware-table entry %v", info.Code)
		}
	}
}

func TestSoftwareTableMatchesPaperTable2(t *testing.T) {
	// Table 2: 13, 31, 32, 38, 42, 43, 44, 45, 57, 58, 59, 62.
	want := map[Code]bool{
		13: true, 31: true, 32: true, 38: true, 42: true, 43: true,
		44: true, 45: true, 57: true, 58: true, 59: true, 62: true,
	}
	got := SoftwareTable()
	if len(got) != len(want) {
		t.Fatalf("software table has %d entries, want %d", len(got), len(want))
	}
	for _, info := range got {
		if !want[info.Code] {
			t.Errorf("unexpected software-table entry %v", info.Code)
		}
	}
}

func TestSharedCodesAppearInBothTables(t *testing.T) {
	// XIDs 57 and 58 are listed in both paper tables.
	inHW := map[Code]bool{}
	for _, i := range HardwareTable() {
		inHW[i.Code] = true
	}
	inSW := map[Code]bool{}
	for _, i := range SoftwareTable() {
		inSW[i.Code] = true
	}
	for _, c := range []Code{57, 58} {
		if !inHW[c] || !inSW[c] {
			t.Errorf("code %v must appear in both tables", c)
		}
	}
}

func TestCrashSemantics(t *testing.T) {
	if MustLookup(SingleBitError).CrashesApp {
		t.Error("SBE must not crash the application (corrected by SECDED)")
	}
	if !MustLookup(DoubleBitError).CrashesApp {
		t.Error("DBE must always crash the application")
	}
	if !MustLookup(OffTheBus).CrashesApp {
		t.Error("off-the-bus must crash the application")
	}
	if MustLookup(ECCPageRetirement).CrashesApp {
		t.Error("page-retirement record itself is informational")
	}
}

func TestPropagationFlags(t *testing.T) {
	if !MustLookup(GraphicsEngineException).PropagatesToJob {
		t.Error("XID 13 must propagate to all job nodes (Observation 7)")
	}
	if MustLookup(DoubleBitError).PropagatesToJob {
		t.Error("DBE occurs on a single card, must not propagate")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup(999); ok {
		t.Error("Lookup(999) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup(999) should panic")
		}
	}()
	MustLookup(999)
}

func TestStringForms(t *testing.T) {
	if SingleBitError.String() != "SBE" {
		t.Errorf("SBE string = %q", SingleBitError.String())
	}
	if OffTheBus.String() != "OTB" {
		t.Errorf("OTB string = %q", OffTheBus.String())
	}
	if DoubleBitError.String() != "XID 48" {
		t.Errorf("DBE string = %q", DoubleBitError.String())
	}
	s := MustLookup(GraphicsEngineException).String()
	if !strings.Contains(s, "XID 13") || !strings.Contains(s, "graphics engine") {
		t.Errorf("info string = %q", s)
	}
	if Hardware.String() != "hardware" || Software.String() != "software" {
		t.Error("Class string forms wrong")
	}
	if !strings.Contains(Class(42).String(), "42") {
		t.Error("unknown class should render its number")
	}
}

func TestThermalAndDriverFlags(t *testing.T) {
	thermal := []Code{OffTheBus, 13, 32, 62}
	for _, c := range thermal {
		if !MustLookup(c).Thermal {
			t.Errorf("%v should be flagged thermal-sensitive", c)
		}
	}
	driverOnly := []Code{38, 42, 43, 44, 45, 59}
	for _, c := range driverOnly {
		info := MustLookup(c)
		if !info.DriverIssue || info.AppRelated {
			t.Errorf("%v should be driver-caused and not app-related", c)
		}
	}
}
