// Package xid catalogs the NVIDIA XID error codes studied in the Titan
// reliability paper (Tables 1 and 2), together with their classification
// (hardware vs. software/firmware), possible causes, and crash semantics.
//
// An XID is the error identifier the NVIDIA driver writes to the system
// console when a GPU condition is detected. Titan's console logs are parsed
// by simple event correlators (SEC) on the system management workstation;
// the reliability study keys almost every analysis off these codes. Two
// events in the study carry no XID: single bit errors (corrected silently
// by SECDED ECC and visible only through nvidia-smi counters) and
// "off the bus" events (the host loses the GPU entirely). Both are given
// synthetic negative codes here so the whole event space shares one type.
package xid

import "fmt"

// Code identifies a GPU error class. Non-negative values are real NVIDIA
// XID codes; negative values are synthetic codes for events the console
// records without an XID.
type Code int

// Synthetic codes for error classes without an NVIDIA XID.
const (
	// SingleBitError is corrected by SECDED ECC; it never appears in
	// console logs and is observable only via nvidia-smi counters.
	SingleBitError Code = -1
	// OffTheBus means the host lost the PCIe connection to the GPU. On
	// Titan this was traced to a system-integration (soldering) issue,
	// not the GPU micro-architecture, and was clustered before Dec 2013.
	OffTheBus Code = -2
)

// Real NVIDIA XID codes that appear in the study.
const (
	GraphicsEngineException   Code = 13
	GPUMemoryPageFault        Code = 31
	CorruptedPushBuffer       Code = 32
	DriverFirmwareError       Code = 38
	VideoProcessorException   Code = 42
	GPUStoppedProcessing      Code = 43
	ContextSwitchFault        Code = 44
	PreemptiveCleanup         Code = 45
	DoubleBitError            Code = 48
	DisplayEngineError        Code = 56
	VideoMemoryInterfaceError Code = 57
	UnstableVideoMemory       Code = 58
	MicrocontrollerHaltOld    Code = 59
	MicrocontrollerHaltNew    Code = 62
	ECCPageRetirement         Code = 63
	ECCPageRetirementAlt      Code = 64
	VideoProcessorFault       Code = 65
)

// Class partitions error codes the way the paper's Tables 1 and 2 do.
type Class int

const (
	// Hardware covers GPU system failures caused by hardware or cosmic
	// rays (Table 1).
	Hardware Class = iota
	// Software covers errors primarily caused by application bugs,
	// driver issues, or thermal problems (Table 2).
	Software
	// Both marks codes the paper lists in both tables because the
	// precise source cannot always be determined.
	Both
)

func (c Class) String() string {
	switch c {
	case Hardware:
		return "hardware"
	case Software:
		return "software"
	case Both:
		return "hardware+software"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Info describes one catalog entry.
type Info struct {
	Code        Code
	Name        string // short descriptive name used in reports
	Class       Class
	Causes      []string // possible causes per NVIDIA XID documentation
	CrashesApp  bool     // whether the event terminates the running application
	AppRelated  bool     // user application is listed among possible causes
	DriverIssue bool     // driver is listed among possible causes
	Thermal     bool     // thermal stress is listed among possible causes
	// PropagatesToJob: the error is reported on every node allocated to
	// the job rather than only where the problem occurred (Observation 7
	// behaviour of application-related errors).
	PropagatesToJob bool
}

// String renders "XID 13 (graphics engine exception)" or the synthetic
// names for SBE and off-the-bus events.
func (i Info) String() string {
	switch i.Code {
	case SingleBitError:
		return "SBE (single bit error)"
	case OffTheBus:
		return "OTB (off the bus)"
	default:
		return fmt.Sprintf("XID %d (%s)", int(i.Code), i.Name)
	}
}

// catalog holds every error class studied in the paper, in code order.
var catalog = []Info{
	{
		Code:       SingleBitError,
		Name:       "single bit error, corrected by SECDED ECC",
		Class:      Hardware,
		Causes:     []string{"cosmic ray strike", "cell wear", "voltage fluctuation"},
		CrashesApp: false,
	},
	{
		Code:       OffTheBus,
		Name:       "GPU off the bus",
		Class:      Hardware,
		Causes:     []string{"system integration (connector soldering)", "thermal stress"},
		CrashesApp: true,
		Thermal:    true,
	},
	{
		Code:            GraphicsEngineException,
		Name:            "graphics engine exception",
		Class:           Software,
		Causes:          []string{"driver", "user application", "system memory or FB corruption", "bus error", "thermal issue"},
		CrashesApp:      true,
		AppRelated:      true,
		DriverIssue:     true,
		Thermal:         true,
		PropagatesToJob: true,
	},
	{
		Code:            GPUMemoryPageFault,
		Name:            "GPU memory page fault",
		Class:           Software,
		Causes:          []string{"driver", "user application"},
		CrashesApp:      true,
		AppRelated:      true,
		DriverIssue:     true,
		PropagatesToJob: true,
	},
	{
		Code:        CorruptedPushBuffer,
		Name:        "invalid or corrupted push buffer stream",
		Class:       Software,
		Causes:      []string{"driver", "user application", "memory or FB corruption", "bus error", "thermal issue"},
		CrashesApp:  true,
		AppRelated:  true,
		DriverIssue: true,
		Thermal:     true,
	},
	{
		Code:        DriverFirmwareError,
		Name:        "driver firmware error",
		Class:       Software,
		Causes:      []string{"driver"},
		CrashesApp:  true,
		DriverIssue: true,
	},
	{
		Code:        VideoProcessorException,
		Name:        "video processor exception",
		Class:       Software,
		Causes:      []string{"driver"},
		CrashesApp:  true,
		DriverIssue: true,
	},
	{
		Code:        GPUStoppedProcessing,
		Name:        "GPU stopped processing",
		Class:       Software,
		Causes:      []string{"driver"},
		CrashesApp:  true,
		DriverIssue: true,
	},
	{
		Code:        ContextSwitchFault,
		Name:        "graphics engine fault during context switch",
		Class:       Software,
		Causes:      []string{"driver"},
		CrashesApp:  true,
		DriverIssue: true,
	},
	{
		Code:        PreemptiveCleanup,
		Name:        "preemptive cleanup, due to previous errors",
		Class:       Software,
		Causes:      []string{"driver (follow-on of a previous error)"},
		CrashesApp:  true,
		DriverIssue: true,
	},
	{
		Code:       DoubleBitError,
		Name:       "double bit error, detected but not corrected by SECDED ECC",
		Class:      Hardware,
		Causes:     []string{"cosmic ray strike", "voltage fluctuation", "cell wear"},
		CrashesApp: true, // SECDED cannot correct, so execution is always terminated
	},
	{
		Code:       DisplayEngineError,
		Name:       "display engine error",
		Class:      Hardware,
		Causes:     []string{"hardware"},
		CrashesApp: true,
	},
	{
		Code:        VideoMemoryInterfaceError,
		Name:        "error programming video memory interface",
		Class:       Both,
		Causes:      []string{"hardware", "driver"},
		CrashesApp:  true,
		DriverIssue: true,
	},
	{
		Code:        UnstableVideoMemory,
		Name:        "unstable video memory interface detected",
		Class:       Both,
		Causes:      []string{"hardware", "driver"},
		CrashesApp:  true,
		DriverIssue: true,
	},
	{
		Code:        MicrocontrollerHaltOld,
		Name:        "internal micro-controller halt (older drivers)",
		Class:       Software,
		Causes:      []string{"driver"},
		CrashesApp:  true,
		DriverIssue: true,
	},
	{
		Code:        MicrocontrollerHaltNew,
		Name:        "internal micro-controller halt (newer drivers)",
		Class:       Software,
		Causes:      []string{"driver", "thermal issue"},
		CrashesApp:  true,
		DriverIssue: true,
		Thermal:     true,
	},
	{
		Code:  ECCPageRetirement,
		Name:  "ECC page retirement",
		Class: Hardware,
		Causes: []string{
			"one double bit error on a page",
			"two single bit errors on the same page",
		},
		// The application crashes when retirement is triggered by a DBE
		// but not when triggered by two SBEs; CrashesApp reflects the
		// retirement record itself, which is informational.
		CrashesApp: false,
	},
	{
		Code:       ECCPageRetirementAlt,
		Name:       "ECC page retirement (companion record)",
		Class:      Hardware,
		Causes:     []string{"same conditions as XID 63"},
		CrashesApp: false,
	},
	{
		Code:       VideoProcessorFault,
		Name:       "video processor exception (hardware)",
		Class:      Hardware,
		Causes:     []string{"hardware"},
		CrashesApp: true,
	},
}

var byCode map[Code]Info

func init() {
	byCode = make(map[Code]Info, len(catalog))
	for _, info := range catalog {
		if _, dup := byCode[info.Code]; dup {
			panic(fmt.Sprintf("xid: duplicate catalog entry for code %d", info.Code))
		}
		byCode[info.Code] = info
	}
}

// Lookup returns the catalog entry for a code.
func Lookup(c Code) (Info, bool) {
	info, ok := byCode[c]
	return info, ok
}

// MustLookup returns the catalog entry for a code and panics when the code
// is not in the study's catalog. Use only with codes from this package.
func MustLookup(c Code) Info {
	info, ok := byCode[c]
	if !ok {
		panic(fmt.Sprintf("xid: code %d not in catalog", int(c)))
	}
	return info
}

// Known reports whether a code is part of the study's catalog.
func Known(c Code) bool {
	_, ok := byCode[c]
	return ok
}

// All returns the full catalog in code order (synthetic codes first).
func All() []Info {
	out := make([]Info, len(catalog))
	copy(out, catalog)
	return out
}

// HardwareTable returns Table 1 of the paper: GPU hardware related errors.
// Codes classified as Both appear in this table and in SoftwareTable.
func HardwareTable() []Info {
	var out []Info
	for _, info := range catalog {
		if info.Class == Hardware || info.Class == Both {
			out = append(out, info)
		}
	}
	return out
}

// SoftwareTable returns Table 2 of the paper: GPU software/firmware
// related errors.
func SoftwareTable() []Info {
	var out []Info
	for _, info := range catalog {
		if info.Class == Software || info.Class == Both {
			out = append(out, info)
		}
	}
	return out
}

// String renders the code. Real XIDs print as "XID n"; synthetic codes
// print their conventional abbreviations.
func (c Code) String() string {
	switch c {
	case SingleBitError:
		return "SBE"
	case OffTheBus:
		return "OTB"
	default:
		return fmt.Sprintf("XID %d", int(c))
	}
}
