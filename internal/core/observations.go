package core

import (
	"fmt"
	"time"

	"titanre/internal/analysis"
	"titanre/internal/console"
	"titanre/internal/gpu"
	"titanre/internal/topology"
	"titanre/internal/xid"
)

// ObservationCheck is the automated verdict on one of the paper's
// fourteen observations, evaluated against the synthetic dataset.
type ObservationCheck struct {
	Number int
	Claim  string
	Pass   bool
	Detail string
}

// CheckObservations evaluates all fourteen observations.
func (s *Study) CheckObservations() []ObservationCheck {
	return []ObservationCheck{
		s.obs1MTBF(),
		s.obs2NvidiaSMI(),
		s.obs3Structures(),
		s.obs4OTB(),
		s.obs5Retirement(),
		s.obs6Burstiness(),
		s.obs7Propagation(),
		s.obs8FaultyNode(),
		s.obs9Correlation(),
		s.obs10SBESkew(),
		s.obs11MemoryCorrelation(),
		s.obs12UtilizationCorrelation(),
		s.obs13UserProxy(),
		s.obs14Workload(),
	}
}

func (s *Study) obs1MTBF() ObservationCheck {
	oc := ObservationCheck{Number: 1, Claim: "DBE MTBF is high, roughly one per week (~160 h)"}
	mtbf, err := s.DBEMTBF()
	if err != nil {
		oc.Detail = "no DBEs observed"
		return oc
	}
	h := mtbf.Hours()
	oc.Pass = h >= 100 && h <= 260
	oc.Detail = fmt.Sprintf("measured MTBF %.0f h over %d DBEs", h, len(s.EventsOf(xid.DoubleBitError)))
	return oc
}

func (s *Study) obs2NvidiaSMI() ObservationCheck {
	oc := ObservationCheck{Number: 2, Claim: "nvidia-smi undercounts DBEs relative to console logs"}
	consoleDBE := len(s.EventsOf(xid.DoubleBitError))
	smiDBE := s.Result.Snapshot.TotalDBE()
	inconsistent := len(s.Result.Snapshot.InconsistentCards())
	oc.Pass = int64(consoleDBE) > smiDBE && inconsistent > 0
	oc.Detail = fmt.Sprintf("console %d vs nvidia-smi %d DBEs; %d cards report DBE>SBE",
		consoleDBE, smiDBE, inconsistent)
	return oc
}

func (s *Study) obs3Structures() ObservationCheck {
	oc := ObservationCheck{Number: 3, Claim: "~86% of DBEs in device memory, ~14% in register file"}
	b := s.Fig3cDBEStructures()
	total := 0
	for _, c := range b {
		total += c
	}
	if total == 0 {
		oc.Detail = "no DBEs"
		return oc
	}
	dev := float64(b[gpu.DeviceMemory]) / float64(total)
	reg := float64(b[gpu.RegisterFile]) / float64(total)
	oc.Pass = dev > 0.72 && dev < 0.95 && reg > 0.05 && reg < 0.28 && dev+reg > 0.99
	oc.Detail = fmt.Sprintf("device memory %.0f%%, register file %.0f%%", dev*100, reg*100)
	return oc
}

func (s *Study) obs4OTB() ObservationCheck {
	oc := ObservationCheck{Number: 4, Claim: "off-the-bus dominated pre-fix, then negligible; upper cages hit more"}
	var pre, post int
	for _, e := range s.EventsOf(xid.OffTheBus) {
		if e.Time.Before(s.Config.OTBFix) {
			pre++
		} else {
			post++
		}
	}
	_, cages := s.Fig5OTBSpatial()
	oc.Pass = pre > 5*post && cages.TopHeavier()
	oc.Detail = fmt.Sprintf("%d before the soldering fix, %d after; cages bottom..top %v", pre, post, cages.All)
	return oc
}

func (s *Study) obs5Retirement() ObservationCheck {
	oc := ObservationCheck{Number: 5, Claim: "page retirement appears with the Jan 2014 driver; most records follow a DBE within minutes"}
	first := analysis.FirstAppearance(s.Result.Events, xid.ECCPageRetirement)
	rt := s.Fig8RetirementTiming()
	oc.Pass = !first.IsZero() && !first.Before(s.Config.RetirementDriver) &&
		rt.Within10Min > 0 && rt.Beyond6h > 0 && rt.Within10Min > rt.TenMinTo6h
	oc.Detail = fmt.Sprintf("first record %s; <=10min %d, 10min-6h %d, >6h %d, DBE pairs w/o retirement %d",
		first.Format("2006-01-02"), rt.Within10Min, rt.TenMinTo6h, rt.Beyond6h, rt.DBEPairsWithoutRetirement)
	return oc
}

func (s *Study) obs6Burstiness() ObservationCheck {
	oc := ObservationCheck{Number: 6, Claim: "application XIDs are bursty and frequent; driver XIDs are neither"}
	_, appBurst := s.Fig10XID13Daily()
	driverDaily := analysis.DailyCounts(s.EventsOf(xid.ContextSwitchFault), s.Config.Start, s.Config.End)
	driverBurst := analysis.BurstinessIndex(driverDaily)
	app := len(s.EventsOf(13))
	driver := len(s.EventsOf(xid.ContextSwitchFault))
	oc.Pass = appBurst > 3*driverBurst && app > driver
	oc.Detail = fmt.Sprintf("burstiness XID13 %.1f vs XID44 %.1f; raw counts %d vs %d",
		appBurst, driverBurst, app, driver)
	return oc
}

func (s *Study) obs7Propagation() ObservationCheck {
	oc := ObservationCheck{Number: 7, Claim: "application errors appear on every node of the job within five seconds; folded torus gives alternating cabinets"}
	recByID := make(map[console.JobID]int)
	for i, r := range s.Result.Jobs {
		recByID[r.ID] = i
	}
	type span struct {
		first, last time.Time
		count       int
	}
	perJob := make(map[console.JobID]*span)
	for _, e := range s.EventsOf(13) {
		if e.Job == 0 {
			continue
		}
		sp := perJob[e.Job]
		if sp == nil {
			perJob[e.Job] = &span{first: e.Time, last: e.Time, count: 1}
			continue
		}
		if e.Time.Before(sp.first) {
			sp.first = e.Time
		}
		if e.Time.After(sp.last) {
			sp.last = e.Time
		}
		sp.count++
	}
	var within5s, fullCoverage, jobs int
	for id, sp := range perJob {
		idx, ok := recByID[id]
		if !ok {
			continue
		}
		jobs++
		if sp.last.Sub(sp.first) <= s.Config.PropagationWindow+time.Second {
			within5s++
		}
		if sp.count >= len(s.Result.Jobs[idx].Nodes) {
			fullCoverage++
		}
	}
	alt := analysis.FootprintAlternation(s.Result.Jobs)
	oc.Pass = jobs > 0 &&
		float64(within5s) >= 0.9*float64(jobs) &&
		float64(fullCoverage) >= 0.9*float64(jobs) &&
		alt > 1.3
	oc.Detail = fmt.Sprintf("%d affected jobs: %.0f%% within window, %.0f%% full node coverage; footprint column gap %.2f (torus ~2, linear 1)",
		jobs, pct(within5s, jobs), pct(fullCoverage, jobs), alt)
	return oc
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func (s *Study) obs8FaultyNode() ObservationCheck {
	oc := ObservationCheck{Number: 8, Claim: "one node repeats XID 13 across unrelated jobs (hardware masquerading as an app error)"}
	if s.Config.FaultyNode < 0 {
		oc.Detail = "faulty-node injection disabled"
		return oc
	}
	node := topology.NodeID(s.Config.FaultyNode)
	jobs := make(map[console.JobID]bool)
	count := 0
	for _, e := range s.EventsOf(13) {
		if e.Node != node {
			continue
		}
		count++
		if e.Job != 0 {
			jobs[e.Job] = true
		}
	}
	oc.Pass = count >= 5 && len(jobs) >= 3
	oc.Detail = fmt.Sprintf("node %s saw %d XID 13 events across %d distinct jobs",
		topology.LocationOf(node).CName(), count, len(jobs))
	return oc
}

func (s *Study) obs9Correlation() ObservationCheck {
	oc := ObservationCheck{Number: 9, Claim: "DBE is followed by XID 45/63; XID 13 by XID 43; OTB/38/48/63 are isolated"}
	withSame, _, codes := s.Fig13Heatmaps()
	idx := make(map[xid.Code]int, len(codes))
	for i, c := range codes {
		idx[c] = i
	}
	p4845 := withSame[idx[48]][idx[45]]
	p4863 := withSame[idx[48]][idx[63]]
	p1343 := withSame[idx[13]][idx[43]]
	diag := func(c xid.Code) float64 { return withSame[idx[c]][idx[c]] }
	oc.Pass = p4845 > 0.3 && p4863 > 0.2 && p1343 > 0.3 &&
		diag(xid.OffTheBus) < 0.1 && diag(38) < 0.1 && diag(48) < 0.1 && diag(63) < 0.15 &&
		diag(13) > 0.3
	oc.Detail = fmt.Sprintf("P(45|48)=%.2f P(63|48)=%.2f P(43|13)=%.2f; diagonals OTB=%.2f 48=%.2f 13=%.2f",
		p4845, p4863, p1343, diag(xid.OffTheBus), diag(48), diag(13))
	return oc
}

func (s *Study) obs10SBESkew() ObservationCheck {
	oc := ObservationCheck{Number: 10, Claim: "SBEs highly skewed; <5% of cards affected; removing top 50 homogenizes; proneness is card-inherent"}
	sk := s.Fig14SBESkew()
	ca := s.Fig15SBECages()
	homoAll := analysis.HomogeneityScore(sk.All)
	homo50 := analysis.HomogeneityScore(sk.WithoutTop50)
	// Distinct affected cards spread roughly evenly across cages.
	var minD, maxD int64 = 1 << 62, 0
	for _, d := range ca.All.Distinct {
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	cardSpreadOK := minD > 0 && float64(maxD)/float64(minD) < 1.35
	oc.Pass = sk.AffectedFraction < 0.065 && sk.Top10Share > 0.22 &&
		homo50 < homoAll*0.7 && cardSpreadOK
	oc.Detail = fmt.Sprintf("affected %.1f%%; top-10 share %.0f%%; homogeneity CV %.2f -> %.2f after top-50; distinct cards per cage %v",
		100*sk.AffectedFraction, 100*sk.Top10Share, homoAll, homo50, ca.All.Distinct)
	return oc
}

func (s *Study) obs11MemoryCorrelation() ObservationCheck {
	oc := ObservationCheck{Number: 11, Claim: "SBE count correlates weakly with memory utilization; most SBEs are in the L2 cache"}
	ucs := s.Fig16to19Correlations()
	maxMem := ucs[0].AllSpearman.Coefficient
	totMem := ucs[1].AllSpearman.Coefficient
	var perStruct [gpu.NumStructures]int64
	for _, sample := range s.Result.Samples {
		for i, v := range sample.PerStructure {
			perStruct[i] += v
		}
	}
	l2Dominant := true
	for i, v := range perStruct {
		if gpu.Structure(i) != gpu.L2Cache && v >= perStruct[gpu.L2Cache] {
			l2Dominant = false
		}
	}
	oc.Pass = maxMem < 0.5 && totMem < 0.5 && l2Dominant
	oc.Detail = fmt.Sprintf("Spearman max-mem %.2f, total-mem %.2f; L2 share %d of %d SBEs",
		maxMem, totMem, perStruct[gpu.L2Cache], sum64(perStruct[:]))
	return oc
}

func sum64(xs []int64) int64 {
	var t int64
	for _, v := range xs {
		t += v
	}
	return t
}

func (s *Study) obs12UtilizationCorrelation() ObservationCheck {
	oc := ObservationCheck{Number: 12, Claim: "SBE count correlates with node count and core hours; excluding top offenders weakens it"}
	ucs := s.Fig16to19Correlations()
	nodes := ucs[2]
	core := ucs[3]
	oc.Pass = nodes.AllSpearman.Coefficient > 0.35 && core.AllSpearman.Coefficient > 0.45 &&
		core.AllSpearman.Coefficient > nodes.AllSpearman.Coefficient-0.05 &&
		nodes.ExclSpearman.Coefficient < nodes.AllSpearman.Coefficient &&
		core.ExclSpearman.Coefficient < core.AllSpearman.Coefficient
	oc.Detail = fmt.Sprintf("Spearman nodes %.2f->%.2f, core-hours %.2f->%.2f (all -> excl top-10)",
		nodes.AllSpearman.Coefficient, nodes.ExclSpearman.Coefficient,
		core.AllSpearman.Coefficient, core.ExclSpearman.Coefficient)
	return oc
}

func (s *Study) obs13UserProxy() ObservationCheck {
	oc := ObservationCheck{Number: 13, Claim: "userID is a better proxy for SBE exposure than per-job core hours"}
	uc := s.Fig20UserCorrelation()
	jobLevel := s.Fig16to19Correlations()[3].AllSpearman.Coefficient
	oc.Pass = uc.AllSpearman.Coefficient > jobLevel && uc.AllSpearman.Coefficient > 0.55
	oc.Detail = fmt.Sprintf("per-user Spearman %.2f vs per-job %.2f (excl top-10: %.2f)",
		uc.AllSpearman.Coefficient, jobLevel, uc.ExclSpearman.Coefficient)
	return oc
}

func (s *Study) obs14Workload() ObservationCheck {
	oc := ObservationCheck{Number: 14, Claim: "largest/longest jobs don't consume the most memory; small jobs can run longest; memory-max jobs use few nodes"}
	wc := s.Fig21Workload()
	oc.Pass = wc.TopMemJobsBelowAvgCoreHours && wc.SmallJobAmongLongest && wc.NodesCoreHoursSpearman > 0.4
	oc.Detail = fmt.Sprintf("top-mem below avg core-hours: %v; small job among longest: %v; nodes~core-hours rho %.2f",
		wc.TopMemJobsBelowAvgCoreHours, wc.SmallJobAmongLongest, wc.NodesCoreHoursSpearman)
	return oc
}
