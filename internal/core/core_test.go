package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"titanre/internal/alert"
	"titanre/internal/analysis"
	"titanre/internal/scheduler"
	"titanre/internal/sim"
	"titanre/internal/xid"
)

// fullStudy runs the complete Jun'13..Feb'15 study once and shares it
// across tests (it takes several seconds).
var (
	fullOnce  sync.Once
	fullStudy *Study
)

func defaultStudy(t *testing.T) *Study {
	t.Helper()
	fullOnce.Do(func() {
		fullStudy = New(sim.DefaultConfig())
	})
	return fullStudy
}

func TestAllObservationsPass(t *testing.T) {
	s := defaultStudy(t)
	for _, oc := range s.CheckObservations() {
		if !oc.Pass {
			t.Errorf("Observation %d failed: %s\n  %s", oc.Number, oc.Claim, oc.Detail)
		}
	}
}

func TestFig2AndMTBF(t *testing.T) {
	s := defaultStudy(t)
	months := s.Fig2MonthlyDBE()
	if len(months) != 21 {
		t.Fatalf("months = %d, want 21 (Jun'13..Feb'15)", len(months))
	}
	total := 0
	for _, m := range months {
		total += m.Count
	}
	if total < 60 || total > 160 {
		t.Errorf("total DBEs = %d, want roughly one per 160 h over the horizon", total)
	}
	mtbf, err := s.DBEMTBF()
	if err != nil {
		t.Fatal(err)
	}
	if mtbf < 100*time.Hour || mtbf > 260*time.Hour {
		t.Errorf("MTBF = %v", mtbf)
	}
}

func TestFig3Spatial(t *testing.T) {
	s := defaultStudy(t)
	grid := s.Fig3aDBESpatial()
	if grid.Total() != int64(len(s.EventsOf(xid.DoubleBitError))) {
		t.Error("spatial map total mismatch")
	}
	cages := s.Fig3bDBECages()
	if !cages.TopHeavier() {
		t.Errorf("DBE cages should be top-heavy: %v", cages.All)
	}
	if cages.Distinct[0]+cages.Distinct[1]+cages.Distinct[2] == 0 {
		t.Error("no distinct cards counted")
	}
}

func TestFig6RetirementStartsWithDriver(t *testing.T) {
	s := defaultStudy(t)
	months := s.Fig6MonthlyRetirement()
	for _, m := range months {
		before := time.Date(m.Year, m.Month, 1, 0, 0, 0, 0, time.UTC).Before(s.Config.RetirementDriver)
		if before && m.Count > 0 {
			t.Errorf("retirement records in %s, before the Jan'14 driver", m.Label())
		}
	}
}

func TestFig8Shape(t *testing.T) {
	s := defaultStudy(t)
	rt := s.Fig8RetirementTiming()
	// Paper shape: a fast cluster (<=10 min), a near-empty middle band,
	// a late cluster, and DBE pairs with nothing between.
	if rt.Within10Min == 0 || rt.Beyond6h == 0 {
		t.Fatalf("missing clusters: %+v", rt)
	}
	if rt.TenMinTo6h >= rt.Within10Min {
		t.Errorf("middle band (%d) should be far below the fast cluster (%d)", rt.TenMinTo6h, rt.Within10Min)
	}
	if rt.DBEPairsWithoutRetirement == 0 {
		t.Error("some successive DBE pairs should lack a retirement between them")
	}
	// Causality: a retirement record must never precede the DBE (or, for
	// the two-SBE path, the error draw) that triggered it. The SBE draws
	// are applied in time order, so every measured delay is non-negative.
	for _, d := range rt.Delays {
		if d < 0 {
			t.Fatalf("retirement precedes its trigger by %v", -d)
		}
	}
	// Two-SBE retirements exist (Beyond6h cluster) and each one was
	// stamped with the time of the later of its two SBEs, so none appears
	// before the retirement-driver epoch either.
	ret := s.Fig6MonthlyRetirement()
	for _, m := range ret {
		if time.Date(m.Year, m.Month, 1, 0, 0, 0, 0, time.UTC).Before(s.Config.RetirementDriver.AddDate(0, -1, 0)) && m.Count > 0 {
			t.Errorf("retirements in %s precede the driver epoch", m.Label())
		}
	}
}

func TestFig12FilteringReduction(t *testing.T) {
	s := defaultStudy(t)
	all, filtered, children := s.Fig12XID13Filtering()
	if all.Total() != filtered.Total()+children.Total() {
		t.Error("filter + children must partition the unfiltered set")
	}
	// Filtering must collapse job-wide storms: at least 10x reduction.
	if filtered.Total()*10 > all.Total() {
		t.Errorf("filtering reduced %d only to %d", all.Total(), filtered.Total())
	}
}

func TestFig13HeatmapProperties(t *testing.T) {
	s := defaultStudy(t)
	withSame, withoutSame, codes := s.Fig13Heatmaps()
	for i := range withSame {
		for j := range withSame[i] {
			if withSame[i][j] < 0 || withSame[i][j] > 1 {
				t.Fatalf("fraction out of range at %d,%d", i, j)
			}
			if i == j && withoutSame[i][j] != 0 {
				t.Fatal("excluded diagonal must be zero")
			}
			if i != j && withSame[i][j] != withoutSame[i][j] {
				t.Fatal("off-diagonal must agree between variants")
			}
		}
	}
	if len(codes) != len(withSame) {
		t.Fatal("axis length mismatch")
	}
}

func TestFig14Fig15SBE(t *testing.T) {
	s := defaultStudy(t)
	sk := s.Fig14SBESkew()
	if sk.AffectedFraction >= 0.065 {
		t.Errorf("affected fraction = %v, want < 5%%-ish", sk.AffectedFraction)
	}
	if sk.Top10Share <= sk.Top50Share-1 || sk.Top50Share < sk.Top10Share {
		t.Errorf("offender shares inconsistent: top10 %v top50 %v", sk.Top10Share, sk.Top50Share)
	}
	ca := s.Fig15SBECages()
	var distinctTotal int64
	for _, d := range ca.All.Distinct {
		distinctTotal += d
	}
	if int(distinctTotal) != sk.AffectedCards {
		t.Errorf("distinct cards %d != affected cards %d", distinctTotal, sk.AffectedCards)
	}
}

func TestSamplesFeedCorrelations(t *testing.T) {
	s := defaultStudy(t)
	ucs := s.Fig16to19Correlations()
	if len(ucs) != 4 {
		t.Fatalf("want 4 metrics, got %d", len(ucs))
	}
	for _, uc := range ucs {
		if uc.JobsAll == 0 || uc.JobsExcl == 0 || uc.JobsExcl > uc.JobsAll {
			t.Errorf("%v: job counts %d/%d", uc.Metric, uc.JobsExcl, uc.JobsAll)
		}
		if uc.AllSpearman.N == 0 {
			t.Errorf("%v: missing Spearman", uc.Metric)
		}
	}
}

func TestWriteReportRenders(t *testing.T) {
	s := defaultStudy(t)
	var sb strings.Builder
	s.WriteReport(&sb)
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Table 2",
		"Fig 2", "Fig 3(a)", "Fig 3(b)", "Fig 3(c)", "Fig 4", "Fig 5",
		"Fig 6", "Fig 7", "Fig 8", "Fig 9", "Fig 10", "Fig 11", "Fig 12",
		"Fig 13", "Fig 14", "Fig 15", "Figs 16-19", "Fig 20", "Fig 21",
		"Observations", "DBE MTBF",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "[FAIL]") {
		t.Error("report contains failing observations")
	}
}

// ---- Ablations: flipping one mechanism removes its signature ----

func ablationConfig(seed int64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.Start = time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	cfg.End = time.Date(2013, 11, 1, 0, 0, 0, 0, time.UTC)
	// Keep the integration issue active the whole window so OTB events
	// are plentiful for cage statistics.
	cfg.OTBFix = cfg.End
	cfg.Workload.Users = 120
	return cfg
}

func TestAblationThermal(t *testing.T) {
	cfg := ablationConfig(11)
	cfg.OTBThermalDoubleF = 0 // disable thermal acceleration
	cfg.DBEThermalDoubleF = 0
	s := New(cfg)
	_, cages := s.Fig5OTBSpatial()
	total := cages.All[0] + cages.All[1] + cages.All[2]
	if total < 30 {
		t.Fatalf("too few OTB events for the ablation: %d", total)
	}
	// Without thermal acceleration the top cage must not dominate by
	// more than sampling noise (binomial ~ sqrt).
	top := float64(cages.All[2])
	bottom := float64(cages.All[0])
	if top > 1.9*bottom+10 {
		t.Errorf("thermal ablation still top-heavy: %v", cages.All)
	}
}

func TestAblationFoldedTorus(t *testing.T) {
	cfg := ablationConfig(12)
	cfg.Allocation = scheduler.LinearFit
	s := New(cfg)
	gap := analysis.FootprintAlternation(s.Result.Jobs)
	if gap > 1.15 {
		t.Errorf("linear placement footprint gap = %.2f, want ~1", gap)
	}

	cfg2 := ablationConfig(12)
	s2 := New(cfg2)
	gap2 := analysis.FootprintAlternation(s2.Result.Jobs)
	if gap2 < gap+0.25 {
		t.Errorf("torus gap %.2f not clearly above linear gap %.2f", gap2, gap)
	}
}

func TestAblationCardSkew(t *testing.T) {
	cfg := ablationConfig(13)
	// Make every card equally (and mildly) susceptible.
	cfg.Profiles.SusceptibleFraction = 1
	cfg.Profiles.SBELogSigma = 0.1
	cfg.Profiles.SBELogMu = -8.5
	s := New(cfg)
	sk := s.Fig14SBESkew()
	if sk.Top10Share > 0.2 {
		t.Errorf("top-10 share = %v without skew, want small", sk.Top10Share)
	}
	if sk.AffectedFraction < 0.25 {
		t.Errorf("affected fraction = %v, want broad when every card is susceptible", sk.AffectedFraction)
	}
}

func TestAblationFaultyNodeOff(t *testing.T) {
	cfg := ablationConfig(14)
	cfg.FaultyNode = -1
	s := New(cfg)
	oc := s.CheckObservations()[7] // Obs 8
	if oc.Pass {
		t.Error("Obs 8 should not pass with the faulty node disabled")
	}
	if !strings.Contains(oc.Detail, "disabled") {
		t.Errorf("detail = %q", oc.Detail)
	}
}

func TestFromResultSharesDataset(t *testing.T) {
	s := defaultStudy(t)
	s2 := FromResult(s.Result)
	if len(s2.EventsOf(xid.DoubleBitError)) != len(s.EventsOf(xid.DoubleBitError)) {
		t.Error("FromResult changed the dataset")
	}
	if len(s2.Top10Offenders()) != len(s.Top10Offenders()) {
		t.Error("offender sets differ")
	}
}

func TestHeatmapCodesCoverKeyXIDs(t *testing.T) {
	codes := HeatmapCodes()
	want := map[xid.Code]bool{13: true, 43: true, 45: true, 48: true, 63: true, xid.OffTheBus: true}
	for _, c := range codes {
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("heatmap axes missing %v", want)
	}
}

func TestTop10OffendersAreWorst(t *testing.T) {
	s := defaultStudy(t)
	counts := s.SBECounts()
	top := s.Top10Offenders()
	if len(top) != 10 {
		t.Fatalf("top10 has %d entries", len(top))
	}
	minTop := counts[top[len(top)-1]]
	for n, c := range counts {
		inTop := false
		for _, tn := range top {
			if tn == n {
				inTop = true
			}
		}
		if !inTop && c > minTop {
			t.Fatalf("node %d with %d SBEs outside top-10 (min top %d)", n, c, minTop)
		}
	}
}

func TestWindowAccessor(t *testing.T) {
	s := defaultStudy(t)
	start, end := s.Window()
	if !start.Equal(s.Config.Start) || !end.Equal(s.Config.End) {
		t.Error("window accessor wrong")
	}
	if len(s.JobLog()) == 0 || len(s.Samples()) == 0 || len(s.Events()) == 0 {
		t.Error("dataset accessors empty")
	}
}

func TestMonthlyDigest(t *testing.T) {
	s := defaultStudy(t)
	digest := s.MonthlyDigest()
	if len(digest) != 21 {
		t.Fatalf("digest months = %d, want 21", len(digest))
	}
	var dbe, otb, ret int
	firstSeen := map[xid.Code]bool{}
	for i, d := range digest {
		dbe += d.DBE
		otb += d.OTB
		ret += d.Retirements
		for _, c := range d.NewCodes {
			if firstSeen[c] {
				t.Fatalf("code %v reported as new twice", c)
			}
			firstSeen[c] = true
		}
		if i == 0 && len(d.NewCodes) == 0 {
			t.Error("first month must introduce codes")
		}
	}
	if dbe != len(s.EventsOf(xid.DoubleBitError)) {
		t.Errorf("digest DBE total %d != %d", dbe, len(s.EventsOf(xid.DoubleBitError)))
	}
	if otb == 0 || ret == 0 {
		t.Error("digest missing OTB or retirements")
	}
	// Retirements must not appear before the driver epoch.
	for _, d := range digest {
		if time.Date(d.Year, d.Month, 1, 0, 0, 0, 0, time.UTC).Before(s.Config.RetirementDriver) && d.Retirements > 0 {
			t.Errorf("retirements in %04d-%02d before the driver", d.Year, int(d.Month))
		}
	}
	var sb strings.Builder
	s.WriteMonthlyDigest(&sb)
	for _, want := range []string{"Monthly operations digest", "2013-06", "2015-02", "95% CI"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("digest render missing %q", want)
		}
	}
}

// TestObservationsAcrossSeeds guards against a calibration that only
// works on the default seed. Skipped in -short mode (three full
// simulations).
func TestObservationsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full multi-seed study; skipped in -short mode")
	}
	for _, seed := range []int64{2, 3} {
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		s := New(cfg)
		failed := 0
		for _, oc := range s.CheckObservations() {
			if !oc.Pass {
				failed++
				t.Logf("seed %d: Obs %d failed: %s", seed, oc.Number, oc.Detail)
			}
		}
		// Allow at most one marginal miss per alternative seed; the
		// default seed must be perfect (TestAllObservationsPass).
		if failed > 1 {
			t.Errorf("seed %d: %d observations failed", seed, failed)
		}
	}
}

func TestAlertsOnFullStudy(t *testing.T) {
	s := defaultStudy(t)
	alerts := s.Alerts(alert.DefaultConfig())
	if len(alerts) == 0 {
		t.Fatal("no alerts from 21 months of production")
	}
	kinds := map[alert.Kind]int{}
	var suspectNodes []alert.Alert
	for _, a := range alerts {
		kinds[a.Kind]++
		if a.Kind == alert.SuspectNode {
			suspectNodes = append(suspectNodes, a)
		}
	}
	// The OTB cluster must trip the burst detector at least once.
	if kinds[alert.Burst] == 0 {
		t.Error("off-the-bus storm not detected as a burst")
	}
	// The DBE-prone cards must cross the hot-spare threshold.
	if kinds[alert.CardDBEThreshold] == 0 {
		t.Error("no card crossed the DBE threshold")
	}
	// New codes must be flagged (incl. XID 63 when the driver lands).
	if kinds[alert.NewCode] < 10 {
		t.Errorf("only %d new-code alerts", kinds[alert.NewCode])
	}
	// Observation 8's faulty node must be flagged suspect.
	found := false
	for _, a := range suspectNodes {
		if int(a.Node) == s.Config.FaultyNode {
			found = true
		}
	}
	if !found {
		t.Errorf("faulty node %d not among %d suspect nodes", s.Config.FaultyNode, len(suspectNodes))
	}
}

func TestExportFigures(t *testing.T) {
	s := defaultStudy(t)
	dir := t.TempDir()
	if err := s.ExportFigures(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 25 {
		t.Fatalf("exported %d files, want one per figure panel (25+)", len(entries))
	}
	for _, want := range []string{
		"fig02_monthly_dbe.tsv", "fig03a_dbe_spatial.tsv", "fig08_retirement_delays.tsv",
		"fig13_heatmap_with_same.tsv", "fig19_sbe_vs_corehours.tsv",
		"fig20_sbe_by_user.tsv", "fig21_workload_by_corehours.tsv",
	} {
		data, err := os.ReadFile(filepath.Join(dir, want))
		if err != nil {
			t.Fatalf("missing %s: %v", want, err)
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
			t.Errorf("%s has no data rows", want)
		}
	}
	// Spot check: fig02 months sum equals the DBE count.
	data, _ := os.ReadFile(filepath.Join(dir, "fig02_monthly_dbe.tsv"))
	total := 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		var month string
		var c int
		if _, err := fmt.Sscanf(line, "%s\t%d", &month, &c); err == nil {
			total += c
		}
	}
	if total != len(s.EventsOf(xid.DoubleBitError)) {
		t.Errorf("exported DBE total %d != %d", total, len(s.EventsOf(xid.DoubleBitError)))
	}
}
