package core

import (
	"bytes"
	"fmt"
	"io"
	"slices"
	"sync"
	"sync/atomic"

	"titanre/internal/analysis"
	"titanre/internal/gpu"
	"titanre/internal/report"
	"titanre/internal/xid"
)

// reportSections lists the report in paper order. Each section renders
// into its own writer and touches the Study only through its (safely
// memoized, see cache.go) accessors, so sections can render concurrently
// and still assemble into byte-identical output.
func reportSections() []func(w io.Writer, s *Study) {
	return []func(w io.Writer, s *Study){
		sectionHeader,
		sectionTables,
		sectionFig2DBE,
		sectionFig3DBEDetail,
		sectionFig4and5OTB,
		sectionFig6and7Retirement,
		sectionFig8RetirementTiming,
		sectionFig9DriverXIDs,
		sectionFig10XID13,
		sectionFig11Halts,
		sectionFig12Filtering,
		sectionFig13Heatmaps,
		sectionFig14SBESkew,
		sectionFig15SBECages,
		sectionFig16to20Correlations,
		sectionFig21Workload,
		sectionObservations,
	}
}

// writeReport renders every section in paper order, serially.
func writeReport(w io.Writer, s *Study) {
	for _, render := range reportSections() {
		render(w, s)
	}
}

// writeReportConcurrent renders the sections into per-section buffers
// over a bounded worker pool, then writes the buffers in paper order.
func writeReportConcurrent(w io.Writer, s *Study, workers int) {
	sections := reportSections()
	if workers > len(sections) {
		workers = len(sections)
	}
	if workers <= 1 {
		writeReport(w, s)
		return
	}
	bufs := make([]bytes.Buffer, len(sections))
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sections) {
					return
				}
				sections[i](&bufs[i], s)
			}
		}()
	}
	wg.Wait()
	for i := range bufs {
		w.Write(bufs[i].Bytes())
	}
}

func sectionHeader(w io.Writer, s *Study) {
	fmt.Fprintf(w, "Titan GPU reliability study — synthetic reproduction\n")
	fmt.Fprintf(w, "window %s .. %s, seed %d\n",
		s.Config.Start.Format("2006-01-02"), s.Config.End.Format("2006-01-02"), s.Config.Seed)
	fmt.Fprintf(w, "jobs %d, console events %d, scheduled node-hours %.0fM\n",
		len(s.Result.Jobs), len(s.Result.Events), s.Result.NodeHours/1e6)

	// Ingestion health: only a dirty resilient load prints this, so a
	// clean dataset keeps the report byte-identical to the fail-fast
	// pipeline.
	if s.ingestHealth != nil && !s.ingestHealth.Clean() {
		report.IngestHealth(w, s.ingestHealth, s.ConfidenceFlags())
	}
}

func sectionTables(w io.Writer, s *Study) {
	hwRows := [][]string{}
	for _, info := range xid.HardwareTable() {
		hwRows = append(hwRows, []string{info.Code.String(), info.Name})
	}
	report.Table(w, "Table 1: GPU hardware related errors", []string{"code", "error"}, hwRows)
	swRows := [][]string{}
	for _, info := range xid.SoftwareTable() {
		swRows = append(swRows, []string{info.Code.String(), info.Name})
	}
	report.Table(w, "Table 2: GPU software/firmware related errors", []string{"code", "error"}, swRows)
}

func sectionFig2DBE(w io.Writer, s *Study) {
	report.MonthlyBars(w, "Fig 2: monthly double bit errors", s.Fig2MonthlyDBE())
	if mtbf, err := s.DBEMTBF(); err == nil {
		fmt.Fprintf(w, "DBE MTBF: %.0f hours (paper: ~160 h, one per week)\n", mtbf.Hours())
	}
	if ia, err := analysis.AnalyzeInterArrivals(s.EventsOf(xid.DoubleBitError)); err == nil {
		fmt.Fprintf(w, "DBE inter-arrival Weibull shape %.2f, KS-vs-exponential p=%.2f (shape ~1: not bursty)\n",
			ia.Weibull.Shape, ia.KSP)
	}
}

func sectionFig3DBEDetail(w io.Writer, s *Study) {
	report.FloorMap(w, "Fig 3(a): DBE spatial distribution", s.Fig3aDBESpatial())
	report.CageHistogram(w, "Fig 3(b): DBE by cage", s.Fig3bDBECages())

	report.Section(w, "Fig 3(c): DBE breakdown by structure")
	breakdown := s.Fig3cDBEStructures()
	total := 0
	for _, c := range breakdown {
		total += c
	}
	structures := make([]gpu.Structure, 0, len(breakdown))
	for st := range breakdown {
		structures = append(structures, st)
	}
	slices.Sort(structures)
	for _, st := range structures {
		c := breakdown[st]
		fmt.Fprintf(w, "%-22s %3d (%.0f%%)\n", st, c, 100*float64(c)/float64(total))
	}
}

func sectionFig4and5OTB(w io.Writer, s *Study) {
	report.MonthlyBars(w, "Fig 4: monthly off-the-bus errors", s.Fig4MonthlyOTB())
	if when, lrt, err := analysis.RegimeChange(s.EventsOf(xid.OffTheBus), s.Config.Start, s.Config.End); err == nil {
		fmt.Fprintf(w, "detected rate change: %s (LRT %.0f) — actual soldering fix %s\n",
			when.Format("2006-01-02"), lrt, s.Config.OTBFix.Format("2006-01-02"))
	}
	otbGrid, otbCages := s.Fig5OTBSpatial()
	report.FloorMap(w, "Fig 5: off-the-bus spatial distribution", otbGrid)
	report.CageHistogram(w, "Fig 5 (cont): off-the-bus by cage", otbCages)
}

func sectionFig6and7Retirement(w io.Writer, s *Study) {
	report.MonthlyBars(w, "Fig 6: monthly ECC page retirement records", s.Fig6MonthlyRetirement())
	retGrid, retCages := s.Fig7RetirementSpatial()
	report.FloorMap(w, "Fig 7: page-retirement spatial distribution", retGrid)
	report.CageHistogram(w, "Fig 7 (cont): page retirement by cage", retCages)
}

func sectionFig8RetirementTiming(w io.Writer, s *Study) {
	report.DelayHistogram(w, "Fig 8: page retirement following a DBE", s.Fig8RetirementTiming())
}

func sectionFig9DriverXIDs(w io.Writer, s *Study) {
	monthly := s.Fig9DriverXIDMonthly()
	for _, code := range []xid.Code{31, 32, 43, 44} {
		report.MonthlyBars(w, fmt.Sprintf("Fig 9: monthly %v incidents", code), monthly[code])
	}
}

func sectionFig10XID13(w io.Writer, s *Study) {
	daily13, burst := s.Fig10XID13Daily()
	report.Sparkline(w, "Fig 10: daily XID 13 incidents (weekly buckets)", daily13)
	total13 := 0
	for _, d := range daily13 {
		total13 += d
	}
	report.Section(w, "Fig 10 (cont): burstiness")
	fmt.Fprintf(w, "incidents: %d; burstiness index (variance/mean of daily counts): %.1f\n", total13, burst)
	if ia, err := analysis.AnalyzeInterArrivals(s.incidents(13)); err == nil {
		fmt.Fprintf(w, "incident inter-arrival Weibull shape %.2f, KS-vs-exponential p=%.3f (shape < 1: clustered)\n",
			ia.Weibull.Shape, ia.KSP)
	}
}

func sectionFig11Halts(w io.Writer, s *Study) {
	old59, new62 := s.Fig11MicrocontrollerHalts()
	report.MonthlyBars(w, "Fig 11: monthly XID 59 (old driver)", old59)
	report.MonthlyBars(w, "Fig 11 (cont): monthly XID 62 (new driver)", new62)
}

func sectionFig12Filtering(w io.Writer, s *Study) {
	all, filtered, children := s.Fig12XID13Filtering()
	report.FloorMap(w, "Fig 12 (top): XID 13, no filtering", all)
	report.FloorMap(w, "Fig 12 (middle): XID 13, 5-second filtering", filtered)
	report.FloorMap(w, "Fig 12 (bottom): XID 13 events inside the 5-second window", children)
}

func sectionFig13Heatmaps(w io.Writer, s *Study) {
	withSame, withoutSame, codes := s.Fig13Heatmaps()
	labels := make([]string, len(codes))
	for i, c := range codes {
		labels[i] = c.String()
	}
	report.Heatmap(w, "Fig 13 (top): P(next within 300 s | prev), same-type included", labels, withSame)
	report.Heatmap(w, "Fig 13 (bottom): same, same-type pairs excluded", labels, withoutSame)
}

func sectionFig14SBESkew(w io.Writer, s *Study) {
	sk := s.Fig14SBESkew()
	report.FloorMap(w, "Fig 14 (left): SBE spatial distribution, all cards", sk.All)
	report.FloorMap(w, "Fig 14 (middle): top-10 offenders removed", sk.WithoutTop10)
	report.FloorMap(w, "Fig 14 (right): top-50 offenders removed", sk.WithoutTop50)
	fmt.Fprintf(w, "cards ever affected: %d (%.1f%% of system); top-10 share %.0f%%, top-50 share %.0f%%\n",
		sk.AffectedCards, 100*sk.AffectedFraction, 100*sk.Top10Share, 100*sk.Top50Share)
}

func sectionFig15SBECages(w io.Writer, s *Study) {
	ca := s.Fig15SBECages()
	report.CageHistogram(w, "Fig 15: SBEs by cage, all cards", ca.All)
	report.CageHistogram(w, "Fig 15 (cont): top-10 removed", ca.WithoutTop10)
	report.CageHistogram(w, "Fig 15 (cont): top-50 removed", ca.WithoutTop50)
}

func sectionFig16to20Correlations(w io.Writer, s *Study) {
	report.Correlations(w, "Figs 16-19: SBE vs resource utilization", s.Fig16to19Correlations())

	uc := s.Fig20UserCorrelation()
	report.Section(w, "Fig 20: SBE vs GPU core hours by user")
	fmt.Fprintf(w, "users: %d; Spearman %.2f (all), %.2f (excl. top-10 offender nodes)\n",
		uc.Users, uc.AllSpearman.Coefficient, uc.ExclSpearman.Coefficient)
}

func sectionFig21Workload(w io.Writer, s *Study) {
	wc := s.Fig21Workload()
	report.Section(w, "Fig 21: workload characteristics")
	fmt.Fprintf(w, "top-memory jobs below average core-hours: %v\n", wc.TopMemJobsBelowAvgCoreHours)
	fmt.Fprintf(w, "small job among longest wall-clock runs:  %v\n", wc.SmallJobAmongLongest)
	fmt.Fprintf(w, "nodes vs core-hours Spearman:              %.2f\n", wc.NodesCoreHoursSpearman)
}

func sectionObservations(w io.Writer, s *Study) {
	report.Section(w, "Observations")
	for _, oc := range s.CheckObservations() {
		status := "PASS"
		if !oc.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "[%s] Obs %2d: %s — %s\n", status, oc.Number, oc.Claim, oc.Detail)
	}
}
