package core

import (
	"sync"
	"time"

	"titanre/internal/analysis"
	"titanre/internal/console"
	"titanre/internal/filtering"
	"titanre/internal/topology"
	"titanre/internal/xid"
)

// Memoized analysis intermediates.
//
// Several figures share expensive inputs: the per-code event slices, the
// merged XID 63+64 retirement series (Figs 6 and 7), and the
// five-second-filtered incident sets (Figs 9, 10 and 12 plus the
// observation checks). Each is built lazily, exactly once, and never
// mutated afterwards — callers share the cached slice and must not write
// to it. All cache paths are safe for concurrent readers, which is what
// lets report sections render in parallel (see report.go).
type studyCache struct {
	indexOnce sync.Once
	byCode    map[xid.Code][]console.Event
	sbe       map[topology.NodeID]int64
	top10     []topology.NodeID

	retireOnce sync.Once
	retired    []console.Event

	incidentMu sync.Mutex
	incidents  map[xid.Code][]console.Event
}

// buildIndex populates the per-code slices and the SBE offender ranking.
// With a columnar store behind the study, each per-code slice is a
// bitmap column scan — the store's popcounts size every allocation
// exactly and only the matching rows are reconstructed; the resulting
// slices are element-identical to the struct walk because the store
// holds exactly Result.Events in order.
func (s *Study) buildIndex() {
	if s.store != nil {
		codes := s.store.Codes()
		byCode := make(map[xid.Code][]console.Event, len(codes))
		for _, code := range codes {
			byCode[code] = s.store.ScanCode(code)
		}
		s.cache.byCode = byCode
	} else {
		byCode := make(map[xid.Code][]console.Event)
		for _, e := range s.Result.Events {
			byCode[e.Code] = append(byCode[e.Code], e)
		}
		s.cache.byCode = byCode
	}
	s.cache.sbe = analysis.NodeSBECounts(s.Result.Snapshot)
	s.cache.top10 = analysis.TopSBEOffenders(s.cache.sbe, 10)
}

func (s *Study) index() { s.cache.indexOnce.Do(s.buildIndex) }

// retirementEvents merges XID 63 and 64, time-ordered. The merge is
// computed once and shared by Figs 6 and 7 and the digest.
func (s *Study) retirementEvents() []console.Event {
	s.cache.retireOnce.Do(func() {
		merged := append([]console.Event{}, s.EventsOf(xid.ECCPageRetirement)...)
		merged = append(merged, s.EventsOf(xid.ECCPageRetirementAlt)...)
		console.SortEvents(merged)
		s.cache.retired = merged
	})
	return s.cache.retired
}

// incidentThreshold is the child-suppression window the paper's SEC rules
// use: events of the same code within five seconds are one incident.
const incidentThreshold = 5 * time.Second

// incidents returns the five-second-filtered incident set for a code,
// computing it at most once per code.
func (s *Study) incidents(code xid.Code) []console.Event {
	s.cache.incidentMu.Lock()
	defer s.cache.incidentMu.Unlock()
	if cached, ok := s.cache.incidents[code]; ok {
		return cached
	}
	if s.cache.incidents == nil {
		s.cache.incidents = make(map[xid.Code][]console.Event)
	}
	filtered := filtering.TimeThreshold(s.EventsOf(code), incidentThreshold)
	s.cache.incidents[code] = filtered
	return filtered
}
