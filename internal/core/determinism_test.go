package core

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"titanre/internal/console"
	"titanre/internal/sim"
)

// shortStudyConfig is a three-month horizon: long enough to exercise
// every fault process (OTB fix, driver upgrade and retirement epoch all
// fall inside), short enough to simulate in about a second.
func shortStudyConfig(seed int64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.End = cfg.Start.AddDate(0, 3, 0)
	return cfg
}

// TestDigestsAcrossGOMAXPROCS is the tentpole's golden determinism
// check at the dataset layer: the same seed must produce bit-identical
// events, jobs and snapshot no matter the available parallelism.
func TestDigestsAcrossGOMAXPROCS(t *testing.T) {
	cfg := shortStudyConfig(1)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	type digests struct {
		events, jobs, snapshot, dataset [32]byte
	}
	var base digests
	for i, procs := range []int{1, 2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		res := sim.Run(cfg)
		got := digests{
			events:   EventsDigest(res.Events),
			jobs:     JobsDigest(res.Jobs),
			snapshot: SnapshotDigest(res.Snapshot),
			dataset:  DatasetDigest(res),
		}
		if i == 0 {
			base = got
			continue
		}
		if got.events != base.events {
			t.Errorf("GOMAXPROCS=%d: events digest diverged", procs)
		}
		if got.jobs != base.jobs {
			t.Errorf("GOMAXPROCS=%d: jobs digest diverged", procs)
		}
		if got.snapshot != base.snapshot {
			t.Errorf("GOMAXPROCS=%d: snapshot digest diverged", procs)
		}
		if got.dataset != base.dataset {
			t.Errorf("GOMAXPROCS=%d: dataset digest diverged", procs)
		}
	}
}

// TestReportGolden compares the rendered report against a committed
// golden file (generated at GOMAXPROCS=1) and verifies the concurrent
// renderer assembles byte-identical output at several pool widths.
func TestReportGolden(t *testing.T) {
	s := FromResult(sim.Run(shortStudyConfig(1)))

	var serial bytes.Buffer
	s.WriteReport(&serial)

	golden := filepath.Join("testdata", "report_seed1_3mo.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with `go run ./cmd/titanreport -seed 1 -months 3 > internal/core/testdata/report_seed1_3mo.golden`): %v", err)
	}
	if !bytes.Equal(serial.Bytes(), want) {
		t.Fatalf("serial report differs from golden (%d vs %d bytes); regenerate the golden if the dataset intentionally changed", serial.Len(), len(want))
	}

	for _, workers := range []int{2, 4, 17, 64} {
		var conc bytes.Buffer
		// A fresh Study per width proves the caches fill correctly under
		// concurrent first use, not just after a serial warm-up.
		s2 := FromResult(s.Result)
		s2.WriteReportConcurrent(&conc, workers)
		if !bytes.Equal(conc.Bytes(), serial.Bytes()) {
			t.Fatalf("concurrent report (workers=%d) differs from serial render", workers)
		}
	}
}

// TestDigestFunctionsDiscriminate makes sure the hashes actually depend
// on their inputs (a digest that ignores fields would pass every
// determinism test while verifying nothing).
func TestDigestFunctionsDiscriminate(t *testing.T) {
	resA := sim.Run(shortStudyConfig(1))
	resB := sim.Run(shortStudyConfig(2))
	if EventsDigest(resA.Events) == EventsDigest(resB.Events) {
		t.Error("different seeds hashed to the same events digest")
	}
	if JobsDigest(resA.Jobs) == JobsDigest(resB.Jobs) {
		t.Error("different seeds hashed to the same jobs digest")
	}
	if SnapshotDigest(resA.Snapshot) == SnapshotDigest(resB.Snapshot) {
		t.Error("different seeds hashed to the same snapshot digest")
	}
	if DatasetDigest(resA) == DatasetDigest(resB) {
		t.Error("different seeds hashed to the same dataset digest")
	}

	// Single-field sensitivity.
	events := append([]console.Event(nil), resA.Events...)
	events[0].Page++
	if EventsDigest(events) == EventsDigest(resA.Events) {
		t.Error("events digest ignores the page field")
	}
}
