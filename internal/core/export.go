package core

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"titanre/internal/analysis"
	"titanre/internal/topology"
	"titanre/internal/xid"
)

// ExportFigures writes every figure's underlying data series as TSV files
// into dir, one file per figure panel, so the results can be re-plotted
// with external tooling. File names follow the paper's figure numbers.
func (s *Study) ExportFigures(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	w := &exporter{dir: dir}

	w.months("fig02_monthly_dbe.tsv", s.Fig2MonthlyDBE())
	w.grid("fig03a_dbe_spatial.tsv", s.Fig3aDBESpatial())
	w.cages("fig03b_dbe_cages.tsv", s.Fig3bDBECages())
	w.file("fig03c_dbe_structures.tsv", func(out *bufio.Writer) {
		fmt.Fprintln(out, "#structure\tcount")
		for st, c := range s.Fig3cDBEStructures() {
			fmt.Fprintf(out, "%s\t%d\n", st, c)
		}
	})
	w.months("fig04_monthly_otb.tsv", s.Fig4MonthlyOTB())
	otbGrid, otbCages := s.Fig5OTBSpatial()
	w.grid("fig05_otb_spatial.tsv", otbGrid)
	w.cages("fig05_otb_cages.tsv", otbCages)
	w.months("fig06_monthly_retirement.tsv", s.Fig6MonthlyRetirement())
	retGrid, retCages := s.Fig7RetirementSpatial()
	w.grid("fig07_retirement_spatial.tsv", retGrid)
	w.cages("fig07_retirement_cages.tsv", retCages)
	w.file("fig08_retirement_delays.tsv", func(out *bufio.Writer) {
		fmt.Fprintln(out, "#delay_seconds_since_last_dbe")
		for _, d := range s.Fig8RetirementTiming().Delays {
			fmt.Fprintf(out, "%.0f\n", d.Seconds())
		}
	})
	for code, months := range s.Fig9DriverXIDMonthly() {
		w.months(fmt.Sprintf("fig09_monthly_xid%d.tsv", int(code)), months)
	}
	daily, _ := s.Fig10XID13Daily()
	w.file("fig10_daily_xid13.tsv", func(out *bufio.Writer) {
		fmt.Fprintln(out, "#day\tincidents")
		for i, c := range daily {
			fmt.Fprintf(out, "%d\t%d\n", i, c)
		}
	})
	old59, new62 := s.Fig11MicrocontrollerHalts()
	w.months("fig11_monthly_xid59.tsv", old59)
	w.months("fig11_monthly_xid62.tsv", new62)
	all, filtered, children := s.Fig12XID13Filtering()
	w.grid("fig12_xid13_raw.tsv", all)
	w.grid("fig12_xid13_filtered.tsv", filtered)
	w.grid("fig12_xid13_children.tsv", children)
	withSame, withoutSame, codes := s.Fig13Heatmaps()
	w.matrix("fig13_heatmap_with_same.tsv", codes, withSame)
	w.matrix("fig13_heatmap_without_same.tsv", codes, withoutSame)
	sk := s.Fig14SBESkew()
	w.grid("fig14_sbe_all.tsv", sk.All)
	w.grid("fig14_sbe_wo_top10.tsv", sk.WithoutTop10)
	w.grid("fig14_sbe_wo_top50.tsv", sk.WithoutTop50)
	ca := s.Fig15SBECages()
	w.cages("fig15_sbe_cages_all.tsv", ca.All)
	w.cages("fig15_sbe_cages_wo_top10.tsv", ca.WithoutTop10)
	w.cages("fig15_sbe_cages_wo_top50.tsv", ca.WithoutTop50)
	for _, uc := range s.Fig16to19Correlations() {
		name := map[analysis.MetricKind]string{
			analysis.MaxMemory:   "fig16_sbe_vs_maxmem.tsv",
			analysis.TotalMemory: "fig17_sbe_vs_totalmem.tsv",
			analysis.NodeCount:   "fig18_sbe_vs_nodes.tsv",
			analysis.CoreHours:   "fig19_sbe_vs_corehours.tsv",
		}[uc.Metric]
		series := uc
		w.file(name, func(out *bufio.Writer) {
			fmt.Fprintf(out, "#spearman=%.3f pearson=%.3f excl_spearman=%.3f\n",
				series.AllSpearman.Coefficient, series.AllPearson.Coefficient, series.ExclSpearman.Coefficient)
			fmt.Fprintln(out, "#rank\tmetric_norm\tsbe_norm")
			for i := range series.SortedMetricNorm {
				fmt.Fprintf(out, "%d\t%.6f\t%.6f\n", i, series.SortedMetricNorm[i], series.SortedSBENorm[i])
			}
		})
	}
	uc := s.Fig20UserCorrelation()
	w.file("fig20_sbe_by_user.tsv", func(out *bufio.Writer) {
		fmt.Fprintf(out, "#spearman=%.3f excl_spearman=%.3f\n",
			uc.AllSpearman.Coefficient, uc.ExclSpearman.Coefficient)
		fmt.Fprintln(out, "#user\tcore_hours\tsbe")
		for i := range uc.PerUserID {
			fmt.Fprintf(out, "%d\t%.3f\t%.0f\n", uc.PerUserID[i], uc.PerUserCoreHours[i], uc.PerUserSBE[i])
		}
	})
	wc := s.Fig21Workload()
	w.file("fig21_workload_by_corehours.tsv", func(out *bufio.Writer) {
		fmt.Fprintln(out, "#rank\tcore_hours_norm\tmax_mem_norm\ttotal_mem_norm\tnodes_norm")
		for i := range wc.ByCoreHours.CoreHours {
			fmt.Fprintf(out, "%d\t%.6f\t%.6f\t%.6f\t%.6f\n", i,
				wc.ByCoreHours.CoreHours[i], wc.ByCoreHours.MaxMem[i],
				wc.ByCoreHours.TotalMem[i], wc.ByCoreHours.Nodes[i])
		}
	})
	w.file("fig21_workload_by_nodes.tsv", func(out *bufio.Writer) {
		fmt.Fprintln(out, "#rank\tnodes_norm\twallclock_norm\tmax_mem_norm")
		for i := range wc.ByNodes.Nodes {
			fmt.Fprintf(out, "%d\t%.6f\t%.6f\t%.6f\n", i,
				wc.ByNodes.Nodes[i], wc.ByNodes.WallClock[i], wc.ByNodes.MaxMem[i])
		}
	})
	return w.err
}

// exporter accumulates the first write error.
type exporter struct {
	dir string
	err error
}

func (e *exporter) file(name string, fn func(*bufio.Writer)) {
	if e.err != nil {
		return
	}
	f, err := os.Create(filepath.Join(e.dir, name))
	if err != nil {
		e.err = fmt.Errorf("core: %w", err)
		return
	}
	bw := bufio.NewWriter(f)
	fn(bw)
	if err := bw.Flush(); err != nil {
		e.err = err
		f.Close()
		return
	}
	if err := f.Close(); err != nil {
		e.err = err
	}
}

func (e *exporter) months(name string, months []analysis.MonthCount) {
	e.file(name, func(out *bufio.Writer) {
		fmt.Fprintln(out, "#month\tcount")
		for _, m := range months {
			fmt.Fprintf(out, "%s\t%d\n", m.Label(), m.Count)
		}
	})
}

func (e *exporter) grid(name string, g analysis.Grid) {
	e.file(name, func(out *bufio.Writer) {
		fmt.Fprintln(out, "#row\tcol\tcount")
		for r := 0; r < topology.Rows; r++ {
			for c := 0; c < topology.Columns; c++ {
				fmt.Fprintf(out, "%d\t%d\t%d\n", r, c, g[r][c])
			}
		}
	})
}

func (e *exporter) cages(name string, cc analysis.CageCounts) {
	e.file(name, func(out *bufio.Writer) {
		fmt.Fprintln(out, "#cage\tcount\tdistinct_cards")
		for cage := 0; cage < topology.CagesPerCabinet; cage++ {
			fmt.Fprintf(out, "%d\t%d\t%d\n", cage, cc.All[cage], cc.Distinct[cage])
		}
	})
}

func (e *exporter) matrix(name string, codes []xid.Code, m [][]float64) {
	e.file(name, func(out *bufio.Writer) {
		fmt.Fprint(out, "#prev\\next")
		for _, c := range codes {
			fmt.Fprintf(out, "\t%s", c)
		}
		fmt.Fprintln(out)
		for i, row := range m {
			fmt.Fprintf(out, "%s", codes[i])
			for _, v := range row {
				fmt.Fprintf(out, "\t%.4f", v)
			}
			fmt.Fprintln(out)
		}
	})
}
