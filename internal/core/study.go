// Package core orchestrates the full study: run the simulated
// installation, collect its console log, job log and nvidia-smi samples,
// and expose one accessor per paper figure plus automated checks of the
// paper's fourteen observations. Everything downstream — the commands,
// the examples, the benchmark harness — goes through a Study.
package core

import (
	"io"
	"time"

	"titanre/internal/alert"
	"titanre/internal/analysis"
	"titanre/internal/console"
	"titanre/internal/filtering"
	"titanre/internal/gpu"
	"titanre/internal/ingest"
	"titanre/internal/nvsmi"
	"titanre/internal/scheduler"
	"titanre/internal/sim"
	"titanre/internal/store"
	"titanre/internal/titanql"
	"titanre/internal/topology"
	"titanre/internal/xid"
)

// Study binds a simulated dataset to the analysis pipeline. Analysis
// intermediates (per-code slices, merged retirements, filtered incident
// sets) are memoized lazily and safely for concurrent readers — see
// cache.go — so figure accessors may be called from multiple goroutines.
type Study struct {
	Config sim.Config
	Result *sim.Result

	cache studyCache

	// store is the sealed columnar segment store behind Result.Events,
	// when the dataset was loaded through dataset.LoadStore. With it the
	// per-code index is built by bitmap column scans (exact-size
	// allocations) instead of a pass over the event structs.
	store *store.Store

	// ingestHealth is the ledger of a resilient dataset load; nil when
	// the data came from a fresh simulation or the strict loader.
	ingestHealth *ingest.Health
	// confidenceThreshold is the per-artifact coverage below which
	// analyses fed by that artifact are flagged low-confidence.
	confidenceThreshold float64
}

// New runs the simulation for the given configuration.
func New(cfg sim.Config) *Study {
	return &Study{Config: cfg, Result: sim.Run(cfg)}
}

// FromResult wraps an existing dataset (e.g. parsed from logs on disk).
func FromResult(res *sim.Result) *Study {
	return &Study{Config: res.Config, Result: res}
}

// FromStore wraps a dataset loaded through the columnar segment store
// (dataset.LoadStore): res.Events must be exactly the store's events in
// segment order. Figure accessors are unchanged; the per-code index is
// served by column scans.
func FromStore(res *sim.Result, st *store.Store) *Study {
	s := FromResult(res)
	s.store = st
	return s
}

// FromIngest wraps a dataset that came through the resilient loader,
// keeping its ingestion-health ledger so the report can carry coverage
// and degraded-mode confidence flags. A nil health behaves like
// FromResult.
func FromIngest(res *sim.Result, health *ingest.Health) *Study {
	s := FromResult(res)
	s.ingestHealth = health
	s.confidenceThreshold = ingest.DefaultOptions().ConfidenceThreshold
	return s
}

// IngestHealth returns the ingestion ledger, or nil when the dataset did
// not come through the resilient loader.
func (s *Study) IngestHealth() *ingest.Health { return s.ingestHealth }

// confidenceAffected maps each artifact to the analyses it feeds; an
// artifact below the coverage threshold degrades exactly these.
var confidenceAffected = map[string]string{
	"console.log":  "Figs 2-13 (console-event series, spatial maps, co-occurrence), observation checks",
	"jobs.tsv":     "scheduled node-hours, Fig 21 workload shapes, sample-allocation rejoin",
	"samples.tsv":  "Figs 16-20 (utilization and per-user SBE correlations)",
	"snapshot.tsv": "Figs 14-15 (SBE skew, cage analyses), top-offender selection",
}

// ConfidenceFlags lists the analyses running on degraded input: every
// artifact whose ingestion coverage fell below the threshold set by the
// resilient loader. Empty for clean loads and simulated datasets.
func (s *Study) ConfidenceFlags() []ingest.ConfidenceFlag {
	if s.ingestHealth == nil {
		return nil
	}
	threshold := s.confidenceThreshold
	if threshold <= 0 {
		threshold = ingest.DefaultOptions().ConfidenceThreshold
	}
	var flags []ingest.ConfidenceFlag
	for _, a := range s.ingestHealth.Artifacts {
		if cov := a.Coverage(); a.Missing || cov < threshold {
			flags = append(flags, ingest.ConfidenceFlag{
				Artifact: a.Name,
				Coverage: cov,
				Affected: confidenceAffected[a.Name],
			})
		}
	}
	return flags
}

// Events returns the full console log.
func (s *Study) Events() []console.Event { return s.Result.Events }

// EventsOf returns the console events of one code.
func (s *Study) EventsOf(code xid.Code) []console.Event {
	s.index()
	return s.cache.byCode[code]
}

// Window returns the observation window.
func (s *Study) Window() (time.Time, time.Time) { return s.Config.Start, s.Config.End }

// SBECounts returns per-node single-bit totals from the final nvidia-smi
// sweep.
func (s *Study) SBECounts() map[topology.NodeID]int64 {
	s.index()
	return s.cache.sbe
}

// Top10Offenders returns the ten worst SBE nodes.
func (s *Study) Top10Offenders() []topology.NodeID {
	s.index()
	return s.cache.top10
}

// HeatmapCodes is the XID list of the Fig. 13 axes.
func HeatmapCodes() []xid.Code {
	return []xid.Code{
		xid.OffTheBus, 13, 31, 32, 38, 43, 44, 45, 48, 57, 58, 59, 62, 63,
	}
}

// ---- Figure accessors ----

// Fig2MonthlyDBE is the monthly double-bit-error frequency.
func (s *Study) Fig2MonthlyDBE() []analysis.MonthCount {
	return analysis.MonthlyCounts(s.EventsOf(xid.DoubleBitError), s.Config.Start, s.Config.End)
}

// DBEMTBF is the headline "one DBE roughly every 160 hours".
func (s *Study) DBEMTBF() (time.Duration, error) {
	return analysis.MTBFOf(s.EventsOf(xid.DoubleBitError), s.Config.Start, s.Config.End)
}

// Fig3aDBESpatial is the DBE floor map.
func (s *Study) Fig3aDBESpatial() analysis.Grid {
	return analysis.SpatialMap(s.EventsOf(xid.DoubleBitError))
}

// Fig3bDBECages is the DBE cage distribution with distinct cards.
func (s *Study) Fig3bDBECages() analysis.CageCounts {
	return analysis.CageDistribution(s.EventsOf(xid.DoubleBitError))
}

// Fig3cDBEStructures is the DBE breakdown by memory structure.
func (s *Study) Fig3cDBEStructures() map[gpu.Structure]int {
	return analysis.StructureBreakdown(s.EventsOf(xid.DoubleBitError))
}

// Fig4MonthlyOTB is the monthly off-the-bus frequency.
func (s *Study) Fig4MonthlyOTB() []analysis.MonthCount {
	return analysis.MonthlyCounts(s.EventsOf(xid.OffTheBus), s.Config.Start, s.Config.End)
}

// Fig5OTBSpatial is the off-the-bus floor map and cage distribution.
func (s *Study) Fig5OTBSpatial() (analysis.Grid, analysis.CageCounts) {
	ev := s.EventsOf(xid.OffTheBus)
	return analysis.SpatialMap(ev), analysis.CageDistribution(ev)
}

// Fig6MonthlyRetirement is the monthly page-retirement frequency.
func (s *Study) Fig6MonthlyRetirement() []analysis.MonthCount {
	return analysis.MonthlyCounts(s.retirementEvents(), s.Config.Start, s.Config.End)
}

// Fig7RetirementSpatial is the page-retirement floor map and cages.
func (s *Study) Fig7RetirementSpatial() (analysis.Grid, analysis.CageCounts) {
	ev := s.retirementEvents()
	return analysis.SpatialMap(ev), analysis.CageDistribution(ev)
}

// Fig8RetirementTiming is the retirement-after-DBE timing histogram.
func (s *Study) Fig8RetirementTiming() analysis.RetirementTiming {
	return analysis.RetirementDelays(s.Result.Events)
}

// Fig9DriverXIDMonthly returns monthly frequencies of XIDs 31, 32, 43, 44
// as incident counts (five-second child filtering applied).
func (s *Study) Fig9DriverXIDMonthly() map[xid.Code][]analysis.MonthCount {
	out := make(map[xid.Code][]analysis.MonthCount)
	for _, code := range []xid.Code{31, 32, 43, 44} {
		out[code] = analysis.MonthlyCounts(s.incidents(code), s.Config.Start, s.Config.End)
	}
	return out
}

// Fig10XID13Daily is the daily XID 13 incident series (five-second
// filtered) with its burstiness index.
func (s *Study) Fig10XID13Daily() ([]int, float64) {
	daily := analysis.DailyCounts(s.incidents(13), s.Config.Start, s.Config.End)
	return daily, analysis.BurstinessIndex(daily)
}

// Fig11MicrocontrollerHalts returns the monthly XID 59 and 62 series.
func (s *Study) Fig11MicrocontrollerHalts() (old, new59 []analysis.MonthCount) {
	return analysis.MonthlyCounts(s.EventsOf(xid.MicrocontrollerHaltOld), s.Config.Start, s.Config.End),
		analysis.MonthlyCounts(s.EventsOf(xid.MicrocontrollerHaltNew), s.Config.Start, s.Config.End)
}

// Fig12XID13Filtering returns the three XID 13 floor maps: unfiltered,
// five-second filtered, and the suppressed children.
func (s *Study) Fig12XID13Filtering() (all, filtered, children analysis.Grid) {
	ev := s.EventsOf(13)
	return analysis.SpatialMap(ev),
		analysis.SpatialMap(s.incidents(13)),
		analysis.SpatialMap(filtering.Children(ev, incidentThreshold))
}

// Fig13Heatmaps returns the co-occurrence matrices with and without
// same-type pairs, over a 300-second window.
func (s *Study) Fig13Heatmaps() (withSame, withoutSame [][]float64, codes []xid.Code) {
	codes = HeatmapCodes()
	withSame = filtering.CooccurrenceMatrix(s.Result.Events, codes, 300*time.Second, false)
	withoutSame = filtering.CooccurrenceMatrix(s.Result.Events, codes, 300*time.Second, true)
	return withSame, withoutSame, codes
}

// Fig14SBESkew is the SBE spatial-skew analysis.
func (s *Study) Fig14SBESkew() analysis.SBESkew { return analysis.AnalyzeSBESkew(s.SBECounts()) }

// Fig15SBECages is the SBE cage analysis.
func (s *Study) Fig15SBECages() analysis.SBECageAnalysis {
	return analysis.AnalyzeSBECages(s.SBECounts())
}

// Fig16to19Correlations is the SBE-versus-utilization correlation table.
func (s *Study) Fig16to19Correlations() []analysis.UtilizationCorrelation {
	return analysis.SBEUtilizationCorrelations(s.Result.Samples, s.Top10Offenders())
}

// Fig20UserCorrelation is the per-user SBE correlation.
func (s *Study) Fig20UserCorrelation() analysis.UserCorrelation {
	return analysis.SBEByUser(s.Result.Samples, s.Top10Offenders())
}

// Fig21Workload is the workload characterization.
func (s *Study) Fig21Workload() analysis.WorkloadCharacteristics {
	return analysis.CharacterizeWorkload(s.Result.Jobs)
}

// Rollup computes a time-bucketed fleet-wide aggregate over the study's
// console events — the batch-pipeline reference the live /rollup
// endpoint must byte-match. When the study is store-backed the events
// already came out of sealed segments in arrival order, so the two
// sides fold the identical stream through the identical kernel.
func (s *Study) Rollup(spec store.RollupSpec) (store.RollupDoc, error) {
	return store.RollupEvents(s.Result.Events, spec)
}

// TopOffenderCards computes the batch-side top-K offender ranking the
// live /top endpoint must match.
func (s *Study) TopOffenderCards(spec store.TopSpec) (store.TopDoc, error) {
	return store.TopEvents(s.Result.Events, spec)
}

// Query runs one titanql expression over the study. A store-backed
// study executes the compiled plan segment-parallel over its sealed
// segments — the same execution titand's GET /query runs — while an
// event-backed study folds the materialized stream through the naive
// reference; the document is byte-identical either way (and at any
// worker count; <= 0 means GOMAXPROCS).
func (s *Study) Query(q string, workers int) (titanql.Doc, error) {
	plan, err := titanql.Parse(q)
	if err != nil {
		return titanql.Doc{}, err
	}
	compiled, err := plan.Compile()
	if err != nil {
		return titanql.Doc{}, err
	}
	if s.store != nil {
		return compiled.Execute(s.store.Segments(), nil, workers)
	}
	return compiled.ExecuteEvents(s.Result.Events)
}

// Alerts replays the console log through the operator alerting engine
// with the given configuration (alert.DefaultConfig mirrors the paper's
// practices) and returns everything it raises.
func (s *Study) Alerts(cfg alert.Config) []alert.Alert {
	eng := alert.NewEngine(cfg)
	eng.Run(s.Result.Events)
	return eng.Alerts()
}

// JobLog returns the placement records.
func (s *Study) JobLog() []scheduler.Record { return s.Result.Jobs }

// Samples returns the per-job nvidia-smi samples.
func (s *Study) Samples() []nvsmi.JobSample { return s.Result.Samples }

// WriteReport renders every figure to w in paper order, serially.
func (s *Study) WriteReport(w io.Writer) {
	writeReport(w, s)
}

// WriteReportConcurrent renders the report's sections concurrently over a
// pool of at most workers goroutines, assembling them in paper order.
// Output is byte-identical to WriteReport for the same dataset.
func (s *Study) WriteReportConcurrent(w io.Writer, workers int) {
	writeReportConcurrent(w, s, workers)
}
