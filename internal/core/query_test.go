package core

import (
	"encoding/json"
	"testing"

	"titanre/internal/sim"
)

// TestStudyQueryStoreBacked: Study.Query over a store-backed study (the
// compiled segment-parallel path) renders byte-identically to the same
// query over the plain event-backed study (the naive fold) — the
// titanreport -query side of the standing equivalence gate. The
// store-backed side is exercised through dataset round trips in
// internal/dataset; here both studies share one simulated result, so
// only the execution path differs.
func TestStudyQueryStoreBacked(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.End = cfg.Start.AddDate(0, 0, 7)
	study := New(cfg)
	for _, q := range []string{
		"* | by code | bucket 1h",
		"code=48 cabinet=c3-* | by cage | bucket 6h | top 5",
		"code=sbe | top serial 5",
	} {
		doc, err := study.Query(q, 0)
		if err != nil {
			t.Fatalf("Query(%q): %v", q, err)
		}
		if doc.Query == "" || (doc.Rollup == nil && doc.Top == nil) {
			t.Fatalf("Query(%q): empty document", q)
		}
		again, err := study.Query(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(doc)
		b, _ := json.Marshal(again)
		if string(a) != string(b) {
			t.Fatalf("Query(%q) differs across worker counts", q)
		}
	}
	if _, err := study.Query("frob=1", 0); err == nil {
		t.Fatal("bad query succeeded")
	}
}
