package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
	"time"

	"titanre/internal/analysis"
	"titanre/internal/console"
	"titanre/internal/gpu"
	"titanre/internal/nvsmi"
	"titanre/internal/report"
	"titanre/internal/scheduler"
	"titanre/internal/sim"
	"titanre/internal/stats"
	"titanre/internal/topology"
	"titanre/internal/xid"
)

func topologyCName(n topology.NodeID) string { return topology.LocationOf(n).CName() }

// MonthDigest is one month of the operations digest: the numbers an
// on-call operator would review, per the practices the paper describes
// (watching DBE cards for the hot-spare policy, tracking the OTB
// integration issue, noticing new XIDs appear).
type MonthDigest struct {
	Year  int
	Month time.Month
	// Counts of the headline classes.
	DBE, OTB, Retirements, AppIncidents, DriverEvents int
	// NewCodes lists error codes seen this month for the first time
	// (Observation 5's "keep updating your parsing rules" trigger).
	NewCodes []xid.Code
	// RepeatDBECards is how many cards saw their 2nd+ DBE this month
	// (hot-spare candidates).
	RepeatDBECards int
}

// MonthlyDigest builds the month-by-month operations summary.
func (s *Study) MonthlyDigest() []MonthDigest {
	var out []MonthDigest
	index := map[int]int{}
	for t := time.Date(s.Config.Start.Year(), s.Config.Start.Month(), 1, 0, 0, 0, 0, time.UTC); t.Before(s.Config.End); t = t.AddDate(0, 1, 0) {
		index[t.Year()*16+int(t.Month())] = len(out)
		out = append(out, MonthDigest{Year: t.Year(), Month: t.Month()})
	}
	seenCodes := map[xid.Code]bool{}
	dbePerCard := map[gpu.Serial]int{}

	appIncidents := map[int]int{}
	for _, code := range []xid.Code{13, 31} {
		for _, e := range s.incidents(code) {
			appIncidents[e.Time.Year()*16+int(e.Time.Month())]++
		}
	}

	for _, e := range s.Result.Events {
		mi, ok := index[e.Time.Year()*16+int(e.Time.Month())]
		if !ok {
			continue
		}
		d := &out[mi]
		if !seenCodes[e.Code] {
			seenCodes[e.Code] = true
			d.NewCodes = append(d.NewCodes, e.Code)
		}
		switch e.Code {
		case xid.DoubleBitError:
			d.DBE++
			dbePerCard[e.Serial]++
			if dbePerCard[e.Serial] >= 2 {
				d.RepeatDBECards++
			}
		case xid.OffTheBus:
			d.OTB++
		case xid.ECCPageRetirement, xid.ECCPageRetirementAlt:
			d.Retirements++
		case 13, 31:
			// Counted as incidents above, not raw storms.
		default:
			d.DriverEvents++
		}
	}
	for key, n := range appIncidents {
		if mi, ok := index[key]; ok {
			out[mi].AppIncidents = n
		}
	}
	return out
}

// WriteMonthlyDigest renders the digest as an aligned table, with the
// running DBE MTBF and its 95% confidence interval in the footer.
func (s *Study) WriteMonthlyDigest(w io.Writer) {
	digest := s.MonthlyDigest()
	rows := make([][]string, 0, len(digest))
	for _, d := range digest {
		newCodes := ""
		for i, c := range d.NewCodes {
			if i > 0 {
				newCodes += " "
			}
			newCodes += c.String()
		}
		rows = append(rows, []string{
			fmt.Sprintf("%04d-%02d", d.Year, int(d.Month)),
			fmt.Sprintf("%d", d.DBE),
			fmt.Sprintf("%d", d.OTB),
			fmt.Sprintf("%d", d.Retirements),
			fmt.Sprintf("%d", d.AppIncidents),
			fmt.Sprintf("%d", d.DriverEvents),
			fmt.Sprintf("%d", d.RepeatDBECards),
			newCodes,
		})
	}
	report.Table(w, "Monthly operations digest",
		[]string{"month", "DBE", "OTB", "retire", "app-incidents", "driver", "repeat-DBE cards", "first-seen codes"},
		rows)
	watch := analysis.RankCardHealth(s.Result.Snapshot, s.Result.Events, 10)
	watchRows := make([][]string, 0, len(watch))
	for _, h := range watch {
		watchRows = append(watchRows, []string{
			h.Serial.String(),
			topologyCName(h.Node),
			fmt.Sprintf("%d", h.DBEs),
			fmt.Sprintf("%d", h.RetiredPages),
			fmt.Sprintf("%d", h.SBE),
			fmt.Sprintf("%.1f", h.Score),
		})
	}
	report.Table(w, "Hot-spare watch list (top 10 riskiest cards)",
		[]string{"card", "node", "DBEs", "retired pages", "SBEs", "score"}, watchRows)

	if mtbf, err := s.DBEMTBF(); err == nil {
		n := len(s.EventsOf(xid.DoubleBitError))
		lo, hi, cerr := stats.MTBFConfidence(n, s.Config.End.Sub(s.Config.Start), 0.95)
		if cerr == nil {
			fmt.Fprintf(w, "DBE MTBF %.0f h (95%% CI %.0f-%.0f h over %d events)\n",
				mtbf.Hours(), lo.Hours(), hi.Hours(), n)
		}
	}
}

// ---- Dataset hash digests ----
//
// The digests below hash a canonical binary serialization of each
// artifact with SHA-256. Two runs that produce the same digest produced
// the same artifact bit for bit, which is how the determinism tests
// compare datasets across GOMAXPROCS settings without holding both in
// memory.

type hasher struct {
	h   hash.Hash
	buf [8]byte
}

func newHasher() *hasher { return &hasher{h: sha256.New()} }

func (d *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(d.buf[:], v)
	d.h.Write(d.buf[:])
}

func (d *hasher) i64(v int64)      { d.u64(uint64(v)) }
func (d *hasher) f64(v float64)    { d.u64(uint64(int64(v * 1e9))) }
func (d *hasher) when(t time.Time) { d.i64(t.UnixNano()) }

func (d *hasher) sum() [32]byte {
	var out [32]byte
	d.h.Sum(out[:0])
	return out
}

// EventsDigest hashes a console log: every field of every event, in log
// order.
func EventsDigest(events []console.Event) [32]byte {
	d := newHasher()
	d.i64(int64(len(events)))
	for _, e := range events {
		d.when(e.Time)
		d.i64(int64(e.Node))
		d.i64(int64(e.Serial))
		d.i64(int64(e.Code))
		d.i64(int64(e.Structure))
		if e.StructureValid {
			d.u64(1)
		} else {
			d.u64(0)
		}
		d.i64(int64(e.Page))
		d.i64(int64(e.Job))
	}
	return d.sum()
}

// JobsDigest hashes a placement log: specs, window and node lists, in log
// order.
func JobsDigest(jobs []scheduler.Record) [32]byte {
	d := newHasher()
	d.i64(int64(len(jobs)))
	for i := range jobs {
		r := &jobs[i]
		d.i64(int64(r.ID))
		d.i64(int64(r.Spec.User))
		d.i64(int64(r.Spec.Class))
		d.when(r.Spec.Submit)
		d.i64(int64(r.Spec.Runtime))
		d.f64(r.Spec.MaxMemPerNodeGB)
		d.f64(r.Spec.AvgMemPerNodeGB)
		if r.Spec.Buggy {
			d.u64(1)
		} else {
			d.u64(0)
		}
		d.when(r.Start)
		d.when(r.End)
		d.i64(int64(len(r.Nodes)))
		for _, n := range r.Nodes {
			d.i64(int64(n))
		}
	}
	return d.sum()
}

// SnapshotDigest hashes a machine-wide nvidia-smi sweep: every device's
// InfoROM counters, in sweep order.
func SnapshotDigest(snap nvsmi.Snapshot) [32]byte {
	d := newHasher()
	d.when(snap.Time)
	d.i64(int64(len(snap.Devices)))
	for i := range snap.Devices {
		dev := &snap.Devices[i]
		d.i64(int64(dev.Node))
		d.i64(int64(dev.Serial))
		for _, c := range dev.Counts.SingleBit {
			d.i64(c)
		}
		for _, c := range dev.Counts.DoubleBit {
			d.i64(c)
		}
		d.i64(int64(dev.RetiredPages))
		d.f64(dev.TempF)
	}
	return d.sum()
}

// DatasetDigest combines the event, job and snapshot digests plus the
// ground-truth SBE count into one fingerprint of a simulation result.
func DatasetDigest(res *sim.Result) [32]byte {
	d := newHasher()
	ev := EventsDigest(res.Events)
	d.h.Write(ev[:])
	jb := JobsDigest(res.Jobs)
	d.h.Write(jb[:])
	sn := SnapshotDigest(res.Snapshot)
	d.h.Write(sn[:])
	d.i64(res.TrueSBECount)
	return d.sum()
}
