package core

import (
	"fmt"
	"io"
	"time"

	"titanre/internal/analysis"
	"titanre/internal/filtering"
	"titanre/internal/gpu"
	"titanre/internal/report"
	"titanre/internal/stats"
	"titanre/internal/topology"
	"titanre/internal/xid"
)

func topologyCName(n topology.NodeID) string { return topology.LocationOf(n).CName() }

// MonthDigest is one month of the operations digest: the numbers an
// on-call operator would review, per the practices the paper describes
// (watching DBE cards for the hot-spare policy, tracking the OTB
// integration issue, noticing new XIDs appear).
type MonthDigest struct {
	Year  int
	Month time.Month
	// Counts of the headline classes.
	DBE, OTB, Retirements, AppIncidents, DriverEvents int
	// NewCodes lists error codes seen this month for the first time
	// (Observation 5's "keep updating your parsing rules" trigger).
	NewCodes []xid.Code
	// RepeatDBECards is how many cards saw their 2nd+ DBE this month
	// (hot-spare candidates).
	RepeatDBECards int
}

// MonthlyDigest builds the month-by-month operations summary.
func (s *Study) MonthlyDigest() []MonthDigest {
	var out []MonthDigest
	index := map[int]int{}
	for t := time.Date(s.Config.Start.Year(), s.Config.Start.Month(), 1, 0, 0, 0, 0, time.UTC); t.Before(s.Config.End); t = t.AddDate(0, 1, 0) {
		index[t.Year()*16+int(t.Month())] = len(out)
		out = append(out, MonthDigest{Year: t.Year(), Month: t.Month()})
	}
	seenCodes := map[xid.Code]bool{}
	dbePerCard := map[gpu.Serial]int{}

	appIncidents := map[int]int{}
	for _, code := range []xid.Code{13, 31} {
		for _, e := range filtering.TimeThreshold(s.EventsOf(code), 5*time.Second) {
			appIncidents[e.Time.Year()*16+int(e.Time.Month())]++
		}
	}

	for _, e := range s.Result.Events {
		mi, ok := index[e.Time.Year()*16+int(e.Time.Month())]
		if !ok {
			continue
		}
		d := &out[mi]
		if !seenCodes[e.Code] {
			seenCodes[e.Code] = true
			d.NewCodes = append(d.NewCodes, e.Code)
		}
		switch e.Code {
		case xid.DoubleBitError:
			d.DBE++
			dbePerCard[e.Serial]++
			if dbePerCard[e.Serial] >= 2 {
				d.RepeatDBECards++
			}
		case xid.OffTheBus:
			d.OTB++
		case xid.ECCPageRetirement, xid.ECCPageRetirementAlt:
			d.Retirements++
		case 13, 31:
			// Counted as incidents above, not raw storms.
		default:
			d.DriverEvents++
		}
	}
	for key, n := range appIncidents {
		if mi, ok := index[key]; ok {
			out[mi].AppIncidents = n
		}
	}
	return out
}

// WriteMonthlyDigest renders the digest as an aligned table, with the
// running DBE MTBF and its 95% confidence interval in the footer.
func (s *Study) WriteMonthlyDigest(w io.Writer) {
	digest := s.MonthlyDigest()
	rows := make([][]string, 0, len(digest))
	for _, d := range digest {
		newCodes := ""
		for i, c := range d.NewCodes {
			if i > 0 {
				newCodes += " "
			}
			newCodes += c.String()
		}
		rows = append(rows, []string{
			fmt.Sprintf("%04d-%02d", d.Year, int(d.Month)),
			fmt.Sprintf("%d", d.DBE),
			fmt.Sprintf("%d", d.OTB),
			fmt.Sprintf("%d", d.Retirements),
			fmt.Sprintf("%d", d.AppIncidents),
			fmt.Sprintf("%d", d.DriverEvents),
			fmt.Sprintf("%d", d.RepeatDBECards),
			newCodes,
		})
	}
	report.Table(w, "Monthly operations digest",
		[]string{"month", "DBE", "OTB", "retire", "app-incidents", "driver", "repeat-DBE cards", "first-seen codes"},
		rows)
	watch := analysis.RankCardHealth(s.Result.Snapshot, s.Result.Events, 10)
	watchRows := make([][]string, 0, len(watch))
	for _, h := range watch {
		watchRows = append(watchRows, []string{
			h.Serial.String(),
			topologyCName(h.Node),
			fmt.Sprintf("%d", h.DBEs),
			fmt.Sprintf("%d", h.RetiredPages),
			fmt.Sprintf("%d", h.SBE),
			fmt.Sprintf("%.1f", h.Score),
		})
	}
	report.Table(w, "Hot-spare watch list (top 10 riskiest cards)",
		[]string{"card", "node", "DBEs", "retired pages", "SBEs", "score"}, watchRows)

	if mtbf, err := s.DBEMTBF(); err == nil {
		n := len(s.EventsOf(xid.DoubleBitError))
		lo, hi, cerr := stats.MTBFConfidence(n, s.Config.End.Sub(s.Config.Start), 0.95)
		if cerr == nil {
			fmt.Fprintf(w, "DBE MTBF %.0f h (95%% CI %.0f-%.0f h over %d events)\n",
				mtbf.Hours(), lo.Hours(), hi.Hours(), n)
		}
	}
}
