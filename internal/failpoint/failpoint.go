// Package failpoint is a registry of named fault-injection sites.
//
// A site is a fixed point in a storage or pipeline code path — a segment
// write, an fsync, a journal append — where a test or a crash harness
// can inject a failure: return an error, sleep, or hard-kill the process
// with SIGKILL. Sites are package-level variables registered at init
// time, so the catalog is complete as soon as the binary links, and a
// disabled site costs one atomic pointer load per Eval — the production
// path pays nothing measurable.
//
// Activation is by spec string, either programmatically (Enable, Arm)
// or from the environment (ArmFromEnv; cmd/titand reads
// TITAND_FAILPOINTS and its -failpoints flag). The spec grammar:
//
//	name=action[,name=action...]
//
//	error        every Eval returns ErrInjected
//	error:N      the first N Evals return ErrInjected, then succeed
//	             (a transient fault; exercises retry paths)
//	delay:DUR    every Eval sleeps DUR (time.ParseDuration syntax)
//	kill         SIGKILL the process on the first Eval
//	kill:N       SIGKILL the process on the Nth Eval
//
// Example: TITAND_FAILPOINTS='store.segment.sync=kill:2' hard-kills the
// daemon the second time a segment fsync is attempted — the crash
// harness (scripts/crash.sh) iterates the whole catalog this way and
// asserts recovery after every one.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected is the error an armed error-action site returns; injection
// sites wrap it with the site name, so errors.Is works through the
// chain.
var ErrInjected = errors.New("failpoint: injected error")

// kind is the armed action at a site.
type kind int

const (
	kindError kind = iota
	kindDelay
	kindKill
)

// state is one armed action. remaining counts down error budgets and up
// to kill thresholds; delay carries the sleep.
type state struct {
	kind kind
	// remaining is the transient-error budget for kindError (negative =
	// unlimited) and the trigger hit for kindKill.
	remaining atomic.Int64
	delay     time.Duration
}

// Site is one registered injection point. The zero-cost guarantee:
// when nothing is armed, Eval is a single atomic load returning nil.
type Site struct {
	name  string
	armed atomic.Pointer[state]
	hits  atomic.Uint64
}

// registry holds every site ever registered, in registration order.
var registry struct {
	mu    sync.Mutex
	sites map[string]*Site
	order []string
}

// Register returns the site named name, creating it on first use.
// Sites are typically package-level vars so registration happens at
// link time and the catalog (Names) is complete before main runs.
func Register(name string) *Site {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.sites == nil {
		registry.sites = make(map[string]*Site)
	}
	if s, ok := registry.sites[name]; ok {
		return s
	}
	s := &Site{name: name}
	registry.sites[name] = s
	registry.order = append(registry.order, name)
	return s
}

// Names returns every registered site name, sorted — the failpoint
// catalog (titand -list-failpoints prints it).
func Names() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]string, len(registry.order))
	copy(out, registry.order)
	sort.Strings(out)
	return out
}

// lookup returns the registered site or nil.
func lookup(name string) *Site {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return registry.sites[name]
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Hits returns how many times Eval ran on an armed site.
func (s *Site) Hits() uint64 { return s.hits.Load() }

// Eval runs the site: nil when disarmed (the fast path), ErrInjected
// while an error budget lasts, a sleep for delays — and for kill, the
// process dies by SIGKILL and Eval never returns.
func (s *Site) Eval() error {
	st := s.armed.Load()
	if st == nil {
		return nil
	}
	hit := s.hits.Add(1)
	switch st.kind {
	case kindError:
		for {
			rem := st.remaining.Load()
			if rem == 0 {
				return nil // budget spent; the fault was transient
			}
			if rem < 0 || st.remaining.CompareAndSwap(rem, rem-1) {
				return fmt.Errorf("%s: %w", s.name, ErrInjected)
			}
		}
	case kindDelay:
		time.Sleep(st.delay)
	case kindKill:
		if hit >= uint64(st.remaining.Load()) {
			kill()
		}
	}
	return nil
}

// kill hard-terminates the process the way a power loss would look to
// everyone else: SIGKILL, no deferred functions, no flushes.
func kill() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// SIGKILL is not synchronous with the syscall return; don't let the
	// caller observe a survived kill site.
	select {}
}

// Enable arms one site with an action spec (see the package comment for
// the grammar). Unknown sites are an error: a typo in a harness should
// fail loudly, not silently test nothing.
func Enable(name, action string) error {
	s := lookup(name)
	if s == nil {
		return fmt.Errorf("failpoint: unknown site %q (catalog: %s)", name, strings.Join(Names(), " "))
	}
	st, err := parseAction(action)
	if err != nil {
		return fmt.Errorf("failpoint: %s: %w", name, err)
	}
	s.hits.Store(0)
	s.armed.Store(st)
	return nil
}

// Disable disarms one site; unknown names are a no-op.
func Disable(name string) {
	if s := lookup(name); s != nil {
		s.armed.Store(nil)
	}
}

// DisableAll disarms every site (tests call it in cleanup).
func DisableAll() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, s := range registry.sites {
		s.armed.Store(nil)
	}
}

// Arm parses a comma-separated spec of name=action pairs and arms each.
func Arm(spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, action, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("failpoint: bad spec %q (want name=action)", part)
		}
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(action)); err != nil {
			return err
		}
	}
	return nil
}

// ArmFromEnv arms the spec in the named environment variable; an unset
// or empty variable is a no-op.
func ArmFromEnv(key string) error {
	if spec := os.Getenv(key); spec != "" {
		return Arm(spec)
	}
	return nil
}

// parseAction decodes one action spec into an armed state.
func parseAction(action string) (*state, error) {
	verb, arg, hasArg := strings.Cut(action, ":")
	st := &state{}
	switch verb {
	case "error":
		st.kind = kindError
		st.remaining.Store(-1)
		if hasArg {
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("bad error budget %q", arg)
			}
			st.remaining.Store(n)
		}
	case "delay":
		st.kind = kindDelay
		if !hasArg {
			return nil, errors.New("delay needs a duration, e.g. delay:10ms")
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return nil, fmt.Errorf("bad delay %q: %w", arg, err)
		}
		st.delay = d
	case "kill":
		st.kind = kindKill
		st.remaining.Store(1)
		if hasArg {
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("bad kill hit %q", arg)
			}
			st.remaining.Store(n)
		}
	default:
		return nil, fmt.Errorf("unknown action %q (error, error:N, delay:DUR, kill, kill:N)", verb)
	}
	return st, nil
}
