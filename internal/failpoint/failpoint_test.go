package failpoint

import (
	"errors"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	siteA = Register("test.site.a")
	siteB = Register("test.site.b")
)

func TestDisarmedIsNil(t *testing.T) {
	for i := 0; i < 100; i++ {
		if err := siteA.Eval(); err != nil {
			t.Fatalf("disarmed Eval returned %v", err)
		}
	}
}

func TestRegisterIdempotent(t *testing.T) {
	if Register("test.site.a") != siteA {
		t.Fatal("re-registering returned a different site")
	}
}

func TestErrorEveryHit(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("test.site.a", "error"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		err := siteA.Eval()
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: got %v, want ErrInjected", i, err)
		}
	}
	if siteA.Hits() != 5 {
		t.Fatalf("hits = %d, want 5", siteA.Hits())
	}
	if err := siteB.Eval(); err != nil {
		t.Fatalf("unarmed sibling site failed: %v", err)
	}
}

func TestErrorBudgetIsTransient(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("test.site.a", "error:3"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := siteA.Eval(); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: got %v, want ErrInjected", i, err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := siteA.Eval(); err != nil {
			t.Fatalf("post-budget hit %d: got %v, want nil", i, err)
		}
	}
}

func TestErrorBudgetExactUnderConcurrency(t *testing.T) {
	t.Cleanup(DisableAll)
	const budget = 64
	if err := Enable("test.site.a", "error:64"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	injected := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < 100; i++ {
				if siteA.Eval() != nil {
					n++
				}
			}
			mu.Lock()
			injected += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if injected != budget {
		t.Fatalf("injected %d errors across goroutines, want exactly %d", injected, budget)
	}
}

func TestDelay(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("test.site.a", "delay:30ms"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := siteA.Eval(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("delay site returned after %v, want >= 30ms", d)
	}
}

func TestArmSpecAndDisable(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Arm("test.site.a=error, test.site.b=delay:1ms"); err != nil {
		t.Fatal(err)
	}
	if err := siteA.Eval(); !errors.Is(err, ErrInjected) {
		t.Fatalf("a: got %v", err)
	}
	if err := siteB.Eval(); err != nil {
		t.Fatalf("b: got %v", err)
	}
	Disable("test.site.a")
	if err := siteA.Eval(); err != nil {
		t.Fatalf("disabled site still injects: %v", err)
	}
}

func TestArmRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"no.such.site=error",
		"test.site.a",
		"test.site.a=explode",
		"test.site.a=error:0",
		"test.site.a=delay",
		"test.site.a=kill:-1",
	} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) succeeded, want error", spec)
		}
	}
	DisableAll()
}

func TestArmFromEnv(t *testing.T) {
	t.Cleanup(DisableAll)
	t.Setenv("FAILPOINT_TEST_SPEC", "test.site.a=error")
	if err := ArmFromEnv("FAILPOINT_TEST_SPEC"); err != nil {
		t.Fatal(err)
	}
	if err := siteA.Eval(); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	t.Setenv("FAILPOINT_TEST_SPEC", "")
	if err := ArmFromEnv("FAILPOINT_TEST_SPEC"); err != nil {
		t.Fatalf("empty env var should be a no-op, got %v", err)
	}
}

func TestNamesIncludesCatalog(t *testing.T) {
	names := Names()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	if !seen["test.site.a"] || !seen["test.site.b"] {
		t.Fatalf("catalog %v is missing the test sites", names)
	}
}

// TestKillIsSIGKILL re-executes the test binary as a helper process that
// arms a kill site and Evals it on the Nth hit; the parent asserts the
// child died by SIGKILL exactly there, not by a clean exit.
func TestKillIsSIGKILL(t *testing.T) {
	if os.Getenv("FAILPOINT_KILL_HELPER") == "1" {
		if err := Arm("test.site.a=kill:3"); err != nil {
			os.Exit(3)
		}
		siteA.Eval()
		siteA.Eval()
		os.Stdout.WriteString("two-survived\n")
		os.Stdout.Sync()
		siteA.Eval() // never returns
		os.Exit(0)
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestKillIsSIGKILL")
	cmd.Env = append(os.Environ(), "FAILPOINT_KILL_HELPER=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("helper survived its kill site; output: %s", out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("helper failed oddly: %v; output: %s", err, out)
	}
	ws, ok := exitErr.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("helper exited %v, want SIGKILL; output: %s", err, out)
	}
	if string(out) != "two-survived\n" {
		t.Fatalf("kill fired at the wrong hit; output: %q", out)
	}
}
