// Package stats provides the statistical machinery the reliability study
// uses: Pearson and Spearman correlation with p-values, MTBF estimation,
// inter-arrival histograms, empirical CDFs, rank utilities, normalization
// for the paper's sorted-and-normalized correlation plots, and top-k
// offender exclusion.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a statistic needs more samples
// than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Correlation bundles a coefficient with its two-sided p-value.
type Correlation struct {
	Coefficient float64
	PValue      float64
	N           int
}

// Pearson computes the Pearson product-moment correlation between x and y
// along with a two-sided p-value from the t distribution with n-2 degrees
// of freedom. It needs at least three pairs and non-degenerate variance.
func Pearson(x, y []float64) (Correlation, error) {
	if len(x) != len(y) {
		return Correlation{}, errors.New("stats: length mismatch")
	}
	n := len(x)
	if n < 3 {
		return Correlation{}, ErrInsufficientData
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return Correlation{}, errors.New("stats: zero variance")
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp against floating point drift before the p-value transform.
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return Correlation{Coefficient: r, PValue: corrPValue(r, n), N: n}, nil
}

// Spearman computes the Spearman rank correlation: Pearson on the ranks,
// with average ranks for ties, and the same t-based p-value.
func Spearman(x, y []float64) (Correlation, error) {
	if len(x) != len(y) {
		return Correlation{}, errors.New("stats: length mismatch")
	}
	rx := Ranks(x)
	ry := Ranks(y)
	c, err := Pearson(rx, ry)
	if err != nil {
		return Correlation{}, err
	}
	return c, nil
}

// corrPValue converts a correlation coefficient into a two-sided p-value
// via the exact t distribution with n-2 degrees of freedom.
func corrPValue(r float64, n int) float64 {
	df := float64(n - 2)
	denom := 1 - r*r
	if denom <= 0 {
		return 0
	}
	t := r * math.Sqrt(df/denom)
	return 2 * studentTSF(math.Abs(t), df)
}

// studentTSF is the survival function P(T > t) of Student's t with df
// degrees of freedom, computed through the regularized incomplete beta
// function.
func studentTSF(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Ranks assigns 1-based ranks to the values, averaging ranks across ties
// (the convention Spearman correlation requires).
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
