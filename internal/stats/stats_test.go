package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	c, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c.Coefficient, 1, 1e-12) {
		t.Errorf("r = %v, want 1", c.Coefficient)
	}
	if c.PValue > 1e-6 {
		t.Errorf("p = %v, want ~0", c.PValue)
	}
}

func TestPearsonAnti(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{4, 3, 2, 1}
	c, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c.Coefficient, -1, 1e-12) {
		t.Errorf("r = %v, want -1", c.Coefficient)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	// Anscombe's quartet, set I: r = 0.81642.
	x := []float64{10, 8, 13, 9, 11, 14, 6, 4, 12, 7, 5}
	y := []float64{8.04, 6.95, 7.58, 8.81, 8.33, 9.96, 7.24, 4.26, 10.84, 4.82, 5.68}
	c, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c.Coefficient, 0.81642, 1e-4) {
		t.Errorf("r = %v, want 0.81642", c.Coefficient)
	}
	// Known two-sided p-value for Anscombe I is ~0.00217.
	if !almost(c.PValue, 0.00217, 5e-4) {
		t.Errorf("p = %v, want ~0.00217", c.PValue)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1, 2}); err != ErrInsufficientData {
		t.Error("n<3 not rejected")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance not rejected")
	}
}

func TestSpearmanMonotonicNonlinear(t *testing.T) {
	// y = x^3 is monotonic: Spearman must be exactly 1 even though
	// Pearson is below 1. This is the paper's reason for preferring
	// Spearman on resource-utilization correlations.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = v * v * v
	}
	s, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Coefficient, 1, 1e-12) {
		t.Errorf("spearman = %v, want 1", s.Coefficient)
	}
	p, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if p.Coefficient >= s.Coefficient {
		t.Errorf("pearson %v should be below spearman %v on convex data", p.Coefficient, s.Coefficient)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 1, 2, 3}
	y := []float64{10, 10, 20, 30}
	s, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Coefficient, 1, 1e-12) {
		t.Errorf("spearman with ties = %v, want 1", s.Coefficient)
	}
}

func TestCorrelationBoundsProperty(t *testing.T) {
	f := func(xs [12]float64, ys [12]float64) bool {
		x := xs[:]
		y := ys[:]
		c, err := Pearson(x, y)
		if err != nil {
			return true // degenerate draw
		}
		if c.Coefficient < -1-1e-12 || c.Coefficient > 1+1e-12 {
			return false
		}
		if c.PValue < 0 || c.PValue > 1 {
			return false
		}
		s, err := Spearman(x, y)
		if err != nil {
			return true
		}
		return s.Coefficient >= -1-1e-12 && s.Coefficient <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRanks(t *testing.T) {
	r := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
	// Ties get the average rank.
	r = Ranks([]float64{5, 5, 1})
	if r[0] != 2.5 || r[1] != 2.5 || r[2] != 1 {
		t.Errorf("tie ranks = %v", r)
	}
}

func TestSummaryStats(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(x) != 5 {
		t.Errorf("mean = %v", Mean(x))
	}
	if !almost(StdDev(x), 2.1380899, 1e-6) {
		t.Errorf("stddev = %v", StdDev(x))
	}
	if Median(x) != 4.5 {
		t.Errorf("median = %v", Median(x))
	}
	if Median([]float64{1, 2, 3}) != 2 {
		t.Error("odd median wrong")
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-slice summaries should be 0")
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if Quantile(x, 0) != 1 || Quantile(x, 1) != 5 {
		t.Error("extreme quantiles wrong")
	}
	if Quantile(x, 0.5) != 3 {
		t.Errorf("median quantile = %v", Quantile(x, 0.5))
	}
	if !almost(Quantile(x, 0.25), 2, 1e-12) {
		t.Errorf("q25 = %v", Quantile(x, 0.25))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestNormalizeToMean(t *testing.T) {
	n := NormalizeToMean([]float64{1, 2, 3})
	if !almost(Mean(n), 1, 1e-12) {
		t.Errorf("normalized mean = %v, want 1", Mean(n))
	}
	z := NormalizeToMean([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero-mean input should pass through")
	}
}

func TestMTBF(t *testing.T) {
	start := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(1600 * time.Hour)
	times := make([]time.Time, 10)
	for i := range times {
		times[i] = start.Add(time.Duration(i) * 160 * time.Hour)
	}
	m, err := MTBF(times, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if m != 160*time.Hour {
		t.Errorf("MTBF = %v, want 160h", m)
	}
	if _, err := MTBF(nil, start, end); err == nil {
		t.Error("MTBF with no events should fail")
	}
	if _, err := MTBF(times, end, start); err == nil {
		t.Error("MTBF with inverted window should fail")
	}
}

func TestInterArrivals(t *testing.T) {
	base := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	// Deliberately unsorted input.
	times := []time.Time{base.Add(3 * time.Hour), base, base.Add(time.Hour)}
	gaps := InterArrivals(times)
	if len(gaps) != 2 || gaps[0] != time.Hour || gaps[1] != 2*time.Hour {
		t.Errorf("gaps = %v", gaps)
	}
	if InterArrivals(times[:1]) != nil {
		t.Error("single event should yield no gaps")
	}
}

func TestECDF(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	got := ECDF(x, []float64{0, 1, 2.5, 4, 9})
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Fatalf("ECDF = %v, want %v", got, want)
		}
	}
	e := ECDF(nil, []float64{1})
	if e[0] != 0 {
		t.Error("empty-sample ECDF should be 0")
	}
}

func TestHistogram(t *testing.T) {
	bounds := []float64{0, 10, 20}
	counts := Histogram([]float64{-1, 0, 5, 10, 15, 20, 99}, bounds)
	// [0,10): 0,5 -> 2; [10,20): 10,15 -> 2; overflow: 20,99 -> 2; -1 dropped.
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if Histogram(nil, []float64{1}) != nil {
		t.Error("short boundaries should yield nil")
	}
}

func TestTopOffenders(t *testing.T) {
	counts := map[uint64]int64{1: 100, 2: 50, 3: 100, 4: 1}
	top := TopOffenders(counts, 2)
	if len(top) != 2 || top[0].Key != 1 || top[1].Key != 3 {
		t.Errorf("top = %v (want keys 1,3 by count desc, key asc)", top)
	}
	if len(TopOffenders(counts, 99)) != 4 {
		t.Error("k beyond len should clamp")
	}
	if len(TopOffenders(counts, -1)) != 0 {
		t.Error("negative k should clamp to 0")
	}
}

func TestExcludeKeys(t *testing.T) {
	counts := map[uint64]int64{1: 100, 2: 50, 3: 10}
	rest := ExcludeKeys(counts, TopOffenders(counts, 1))
	if _, there := rest[1]; there {
		t.Error("top offender not excluded")
	}
	if len(rest) != 2 {
		t.Errorf("rest = %v", rest)
	}
}

func TestSkewRatio(t *testing.T) {
	counts := map[uint64]int64{1: 90, 2: 5, 3: 5}
	if r := SkewRatio(counts, 1); !almost(r, 0.9, 1e-12) {
		t.Errorf("skew = %v, want 0.9", r)
	}
	if SkewRatio(map[uint64]int64{}, 1) != 0 {
		t.Error("empty skew should be 0")
	}
}

func TestStudentTSFSanity(t *testing.T) {
	// For df=10, P(T>1.812) ~ 0.05 (one-sided).
	if p := studentTSF(1.812, 10); !almost(p, 0.05, 0.002) {
		t.Errorf("t sf(1.812, 10) = %v, want ~0.05", p)
	}
	// Symmetry point.
	if p := studentTSF(0, 5); p != 0.5 {
		t.Errorf("t sf(0) = %v, want 0.5", p)
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Error("edge values wrong")
	}
	// I_x(1,1) = x.
	if !almost(regIncBeta(1, 1, 0.37), 0.37, 1e-10) {
		t.Errorf("I_0.37(1,1) = %v", regIncBeta(1, 1, 0.37))
	}
}
