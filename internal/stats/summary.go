package stats

import (
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// when fewer than two samples are given.
func StdDev(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	m := Mean(x)
	var ss float64
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Median returns the sample median, or 0 for an empty slice.
func Median(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics. Returns 0 for an empty slice.
func Quantile(x []float64, q float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// NormalizeToMean divides every value by the slice mean, the normalization
// the paper applies before plotting resource-vs-SBE curves ("values have
// been normalized to average value of the respective metrics"). A zero
// mean leaves the slice unchanged.
func NormalizeToMean(x []float64) []float64 {
	out := make([]float64, len(x))
	m := Mean(x)
	if m == 0 {
		copy(out, x)
		return out
	}
	for i, v := range x {
		out[i] = v / m
	}
	return out
}

// MTBF estimates the mean time between failures from event timestamps over
// an observation window. It divides the window length by the event count
// (the estimator the paper's "one DBE every ~160 hours" uses). It returns
// ErrInsufficientData when no events occurred.
func MTBF(times []time.Time, windowStart, windowEnd time.Time) (time.Duration, error) {
	if len(times) == 0 || !windowEnd.After(windowStart) {
		return 0, ErrInsufficientData
	}
	window := windowEnd.Sub(windowStart)
	return window / time.Duration(len(times)), nil
}

// InterArrivals returns the gaps between consecutive timestamps. The input
// is sorted internally; the result has len(times)-1 entries.
func InterArrivals(times []time.Time) []time.Duration {
	if len(times) < 2 {
		return nil
	}
	s := append([]time.Time(nil), times...)
	sort.Slice(s, func(i, j int) bool { return s[i].Before(s[j]) })
	out := make([]time.Duration, len(s)-1)
	for i := 1; i < len(s); i++ {
		out[i-1] = s[i].Sub(s[i-1])
	}
	return out
}

// ECDF returns the empirical CDF evaluated at each of the given points for
// the sample x: the fraction of samples <= point.
func ECDF(x []float64, points []float64) []float64 {
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = float64(sort.SearchFloat64s(s, math.Nextafter(p, math.Inf(1)))) / float64(len(s))
	}
	if len(s) == 0 {
		for i := range out {
			out[i] = 0
		}
	}
	return out
}

// Histogram counts samples into the half-open bins defined by boundaries:
// bin i holds samples in [boundaries[i], boundaries[i+1]). Samples below
// the first boundary are dropped; samples at or above the last boundary
// land in an implicit overflow bin appended at the end. The result has
// len(boundaries) entries (len-1 real bins plus overflow).
func Histogram(samples []float64, boundaries []float64) []int {
	if len(boundaries) < 2 {
		return nil
	}
	counts := make([]int, len(boundaries))
	for _, v := range samples {
		if v < boundaries[0] {
			continue
		}
		i := sort.SearchFloat64s(boundaries, v)
		// SearchFloat64s returns the first boundary >= v; adjust to the
		// bin index whose lower edge is <= v.
		if i == len(boundaries) || boundaries[i] != v {
			i--
		}
		if i >= len(boundaries)-1 {
			counts[len(boundaries)-1]++ // overflow bin
		} else {
			counts[i]++
		}
	}
	return counts
}
