package stats

import "sort"

// Top-k offender exclusion.
//
// The paper repeatedly re-runs an analysis after removing the 10 and 50
// GPU cards with the most single bit errors, because a handful of cards
// produce almost all SBEs and swamp every spatial and correlation result.
// These helpers implement that exclusion over generic keyed counts.

// KeyCount is a (key, count) pair for offender rankings.
type KeyCount struct {
	Key   uint64
	Count int64
}

// TopOffenders returns the k keys with the largest counts, ties broken by
// ascending key for determinism, sorted by descending count.
func TopOffenders(counts map[uint64]int64, k int) []KeyCount {
	all := make([]KeyCount, 0, len(counts))
	for key, c := range counts {
		all = append(all, KeyCount{Key: key, Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if k > len(all) {
		k = len(all)
	}
	if k < 0 {
		k = 0
	}
	return all[:k]
}

// ExcludeKeys returns a copy of counts without the given keys.
func ExcludeKeys(counts map[uint64]int64, exclude []KeyCount) map[uint64]int64 {
	drop := make(map[uint64]bool, len(exclude))
	for _, kc := range exclude {
		drop[kc.Key] = true
	}
	out := make(map[uint64]int64, len(counts))
	for k, v := range counts {
		if !drop[k] {
			out[k] = v
		}
	}
	return out
}

// SkewRatio reports what fraction of the total count the top-k keys carry;
// 0 when the total is zero. It is the quantitative form of the paper's
// "a small fraction of cards are responsible for almost all of the SBEs".
func SkewRatio(counts map[uint64]int64, k int) float64 {
	var total int64
	for _, v := range counts {
		total += v
	}
	if total == 0 {
		return 0
	}
	var top int64
	for _, kc := range TopOffenders(counts, k) {
		top += kc.Count
	}
	return float64(top) / float64(total)
}
