package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func expSamples(rng *rand.Rand, n int, rate float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.ExpFloat64() / rate
	}
	return out
}

func weibullSamples(rng *rand.Rand, n int, scale, shape float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		out[i] = scale * math.Pow(-math.Log(u), 1/shape)
	}
	return out
}

func TestFitExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fit, err := FitExponential(expSamples(rng, 5000, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Rate-0.25) > 0.02 {
		t.Errorf("rate = %v, want ~0.25", fit.Rate)
	}
	if _, err := FitExponential(nil); err == nil {
		t.Error("empty fit should fail")
	}
	if _, err := FitExponential([]float64{-1}); err == nil {
		t.Error("negative sample should fail")
	}
	if _, err := FitExponential([]float64{0, 0}); err == nil {
		t.Error("zero-mass sample should fail")
	}
}

func TestFitWeibullMemoryless(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fit, err := FitWeibull(expSamples(rng, 4000, 1.0/160))
	if err != nil {
		t.Fatal(err)
	}
	if fit.Shape < 0.92 || fit.Shape > 1.08 {
		t.Errorf("shape = %v, want ~1 for Poisson arrivals", fit.Shape)
	}
	if math.Abs(fit.Scale-160)/160 > 0.1 {
		t.Errorf("scale = %v, want ~160", fit.Scale)
	}
}

func TestFitWeibullClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fit, err := FitWeibull(weibullSamples(rng, 4000, 10, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if fit.Shape < 0.45 || fit.Shape > 0.56 {
		t.Errorf("shape = %v, want ~0.5 for clustered arrivals", fit.Shape)
	}
}

func TestFitWeibullWearOut(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fit, err := FitWeibull(weibullSamples(rng, 4000, 5, 2.5))
	if err != nil {
		t.Fatal(err)
	}
	if fit.Shape < 2.3 || fit.Shape > 2.7 {
		t.Errorf("shape = %v, want ~2.5", fit.Shape)
	}
}

func TestFitWeibullErrors(t *testing.T) {
	if _, err := FitWeibull([]float64{1, 2}); err != ErrInsufficientData {
		t.Error("short sample should fail")
	}
	if _, err := FitWeibull([]float64{1, 2, 0}); err == nil {
		t.Error("non-positive sample should fail")
	}
}

func TestKSExponentialAcceptsExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := expSamples(rng, 2000, 0.5)
	fit, _ := FitExponential(x)
	d, p, err := KSExponential(x, fit.Rate)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("KS rejected true exponential: d=%v p=%v", d, p)
	}
}

func TestKSExponentialRejectsClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := weibullSamples(rng, 2000, 10, 0.4)
	fit, _ := FitExponential(x)
	_, p, err := KSExponential(x, fit.Rate)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-4 {
		t.Errorf("KS failed to reject heavy clustering: p=%v", p)
	}
}

func TestKSExponentialErrors(t *testing.T) {
	if _, _, err := KSExponential(nil, 1); err == nil {
		t.Error("empty sample should fail")
	}
	if _, _, err := KSExponential([]float64{1}, 0); err == nil {
		t.Error("zero rate should fail")
	}
}

func TestKSPValueBounds(t *testing.T) {
	if ksPValue(0) != 1 {
		t.Error("tiny statistic should give p=1")
	}
	if p := ksPValue(10); p > 1e-12 {
		t.Errorf("huge statistic should give p~0, got %v", p)
	}
	// Known value: Q(1.36) ~ 0.049 (the classic 5% critical point).
	if p := ksPValue(1.36); math.Abs(p-0.049) > 0.003 {
		t.Errorf("Q(1.36) = %v, want ~0.049", p)
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:   0,
		0.975: 1.959964,
		0.025: -1.959964,
		0.995: 2.575829,
		0.01:  -2.326348,
	}
	for p, want := range cases {
		if got := normalQuantile(p); math.Abs(got-want) > 1e-4 {
			t.Errorf("z(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("edge quantiles should be infinite")
	}
}

func TestChiSquareQuantile(t *testing.T) {
	// chi2(0.95, 10) = 18.307; chi2(0.05, 10) = 3.940.
	if got := chiSquareQuantile(0.95, 10); math.Abs(got-18.307) > 0.1 {
		t.Errorf("chi2(0.95,10) = %v", got)
	}
	if got := chiSquareQuantile(0.05, 10); math.Abs(got-3.940) > 0.1 {
		t.Errorf("chi2(0.05,10) = %v", got)
	}
}

func TestMTBFConfidence(t *testing.T) {
	// 100 events over 16000 hours: MTBF 160 h; the exact 95% CI is
	// roughly [132, 195] hours.
	lo, hi, err := MTBFConfidence(100, 16000*time.Hour, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatal("inverted interval")
	}
	if lo.Hours() < 120 || lo.Hours() > 145 {
		t.Errorf("lo = %v", lo)
	}
	if hi.Hours() < 180 || hi.Hours() > 210 {
		t.Errorf("hi = %v", hi)
	}
	// The point estimate must be inside.
	if 160 < lo.Hours() || 160 > hi.Hours() {
		t.Error("point estimate outside CI")
	}
	if _, _, err := MTBFConfidence(0, time.Hour, 0.95); err == nil {
		t.Error("zero events should fail")
	}
	if _, _, err := MTBFConfidence(5, 0, 0.95); err == nil {
		t.Error("zero window should fail")
	}
	if _, _, err := MTBFConfidence(5, time.Hour, 1.5); err == nil {
		t.Error("bad level should fail")
	}
}

func TestPoissonChangepoint(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	counts := make([]int, 300)
	for i := range counts {
		mean := 6.0
		if i >= 180 {
			mean = 0.4
		}
		// Small Poisson draw.
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				break
			}
			k++
		}
		counts[i] = k
	}
	k, lrt, err := PoissonChangepoint(counts)
	if err != nil {
		t.Fatal(err)
	}
	if k < 170 || k > 190 {
		t.Errorf("changepoint at %d, want ~180", k)
	}
	if lrt < 50 {
		t.Errorf("LRT = %v, want decisive", lrt)
	}
	// A flat series has weak evidence.
	flat := make([]int, 100)
	for i := range flat {
		flat[i] = 3 + (i % 2)
	}
	_, lrtFlat, err := PoissonChangepoint(flat)
	if err != nil {
		t.Fatal(err)
	}
	if lrtFlat > lrt/10 {
		t.Errorf("flat-series LRT %v too strong", lrtFlat)
	}
	if _, _, err := PoissonChangepoint([]int{1, 2}); err == nil {
		t.Error("short series should fail")
	}
	if _, _, err := PoissonChangepoint([]int{1, -1, 2, 3}); err == nil {
		t.Error("negative counts should fail")
	}
}
