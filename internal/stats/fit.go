package stats

import (
	"errors"
	"math"
	"sort"
	"time"
)

// Distribution fitting for inter-arrival analysis.
//
// The paper argues qualitatively that double bit errors "are not bursty
// in nature" while application XIDs are. These fits make that
// quantitative: a Weibull shape parameter near 1 (equivalently, a
// Kolmogorov-Smirnov test that cannot reject exponentiality) means a
// memoryless failure process; shape < 1 means clustering (a decreasing
// hazard: events beget events), the signature of burstiness.

// ExponentialFit is the MLE of an exponential rate.
type ExponentialFit struct {
	Rate float64 // events per unit
	N    int
}

// FitExponential fits an exponential distribution to positive samples.
func FitExponential(x []float64) (ExponentialFit, error) {
	if len(x) == 0 {
		return ExponentialFit{}, ErrInsufficientData
	}
	var sum float64
	for _, v := range x {
		if v < 0 {
			return ExponentialFit{}, errors.New("stats: negative sample")
		}
		sum += v
	}
	if sum <= 0 {
		return ExponentialFit{}, errors.New("stats: zero-mass sample")
	}
	return ExponentialFit{Rate: float64(len(x)) / sum, N: len(x)}, nil
}

// WeibullFit is the MLE of a Weibull distribution.
type WeibullFit struct {
	Shape float64 // k: <1 clustering, 1 memoryless, >1 wear-out
	Scale float64 // lambda
	N     int
}

// FitWeibull fits a Weibull distribution to positive samples by Newton
// iteration on the shape's profile likelihood.
func FitWeibull(x []float64) (WeibullFit, error) {
	n := len(x)
	if n < 3 {
		return WeibullFit{}, ErrInsufficientData
	}
	var meanLog float64
	for _, v := range x {
		if v <= 0 {
			return WeibullFit{}, errors.New("stats: non-positive sample")
		}
		meanLog += math.Log(v)
	}
	meanLog /= float64(n)

	// Solve f(k) = S1(k)/S0(k) - 1/k - meanLog = 0 where
	// S0 = sum x^k, S1 = sum x^k ln x.
	k := 1.0
	for iter := 0; iter < 100; iter++ {
		var s0, s1, s2 float64
		for _, v := range x {
			xk := math.Pow(v, k)
			l := math.Log(v)
			s0 += xk
			s1 += xk * l
			s2 += xk * l * l
		}
		f := s1/s0 - 1/k - meanLog
		// f'(k) = (S2*S0 - S1^2)/S0^2 + 1/k^2.
		fp := (s2*s0-s1*s1)/(s0*s0) + 1/(k*k)
		step := f / fp
		k -= step
		if k <= 0 {
			k = 1e-3
		}
		if math.Abs(step) < 1e-10 {
			break
		}
	}
	var s0 float64
	for _, v := range x {
		s0 += math.Pow(v, k)
	}
	scale := math.Pow(s0/float64(n), 1/k)
	return WeibullFit{Shape: k, Scale: scale, N: n}, nil
}

// KSExponential runs a Kolmogorov-Smirnov test of the samples against an
// exponential distribution with the given rate, returning the D statistic
// and the asymptotic p-value. Small p rejects exponentiality.
//
// Note: when the rate was itself estimated from the same samples the
// p-value is conservative (the Lilliefors correction is not applied);
// treat it as a comparative index rather than an exact significance.
func KSExponential(x []float64, rate float64) (d, p float64, err error) {
	n := len(x)
	if n == 0 || rate <= 0 {
		return 0, 0, ErrInsufficientData
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	for i, v := range s {
		cdf := 1 - math.Exp(-rate*v)
		lo := cdf - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - cdf
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d, ksPValue(math.Sqrt(float64(n)) * d), nil
}

// ksPValue is the asymptotic Kolmogorov distribution survival function
// Q(t) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 t^2).
func ksPValue(t float64) float64 {
	if t < 1e-3 {
		return 1
	}
	var q float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j*j)*t*t)
		q += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * q
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// MTBFConfidence returns the exact confidence interval for the MTBF of a
// homogeneous Poisson failure process observed for a fixed window with n
// events, via the chi-square distribution: the rate's CI is
// [chi2(alpha/2, 2n)/2T, chi2(1-alpha/2, 2n+2)/2T]. Quantiles use the
// Wilson-Hilferty approximation, accurate to a fraction of a percent for
// the degrees of freedom that matter here.
func MTBFConfidence(n int, window time.Duration, level float64) (lo, hi time.Duration, err error) {
	if n <= 0 || window <= 0 || level <= 0 || level >= 1 {
		return 0, 0, ErrInsufficientData
	}
	alpha := 1 - level
	t := window.Hours()
	upperRate := chiSquareQuantile(1-alpha/2, 2*float64(n)+2) / (2 * t)
	lowerRate := chiSquareQuantile(alpha/2, 2*float64(n)) / (2 * t)
	if lowerRate <= 0 || upperRate <= 0 {
		return 0, 0, errors.New("stats: degenerate chi-square quantile")
	}
	lo = time.Duration(1 / upperRate * float64(time.Hour))
	hi = time.Duration(1 / lowerRate * float64(time.Hour))
	return lo, hi, nil
}

// chiSquareQuantile approximates the p-quantile of chi-square with k
// degrees of freedom (Wilson-Hilferty).
func chiSquareQuantile(p, k float64) float64 {
	z := normalQuantile(p)
	a := 2.0 / (9 * k)
	v := 1 - a + z*math.Sqrt(a)
	return k * v * v * v
}

// normalQuantile is the standard normal quantile via the
// Beasley-Springer-Moro rational approximation.
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p <= 0 {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// PoissonChangepoint finds the most likely single change point in a
// series of daily counts under a piecewise-constant Poisson model: the
// split index k maximizing the likelihood of rate lambda1 before k and
// lambda2 from k on. It returns the index and the log-likelihood-ratio
// statistic against the no-change model (larger = stronger evidence; as
// a rule of thumb values above ~10 are decisive for day-scale series).
//
// This is how a site can *infer* a regime change — like the December 2013
// off-the-bus soldering fix — from the data instead of knowing the
// maintenance date.
func PoissonChangepoint(counts []int) (k int, lrt float64, err error) {
	n := len(counts)
	if n < 4 {
		return 0, 0, ErrInsufficientData
	}
	// Prefix sums for O(1) segment MLEs.
	prefix := make([]float64, n+1)
	for i, c := range counts {
		if c < 0 {
			return 0, 0, errors.New("stats: negative count")
		}
		prefix[i+1] = prefix[i] + float64(c)
	}
	total := prefix[n]
	segLL := func(sum, length float64) float64 {
		// Poisson log-likelihood up to terms independent of lambda:
		// sum*log(lambda) - length*lambda with lambda = sum/length.
		if sum == 0 || length == 0 {
			return 0
		}
		lambda := sum / length
		return sum*math.Log(lambda) - length*lambda
	}
	nullLL := segLL(total, float64(n))
	best := -math.MaxFloat64
	bestK := 0
	for split := 1; split < n; split++ {
		ll := segLL(prefix[split], float64(split)) + segLL(total-prefix[split], float64(n-split))
		if ll > best {
			best = ll
			bestK = split
		}
	}
	return bestK, 2 * (best - nullLL), nil
}
