package titanre

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps facade tests fast: one month of production.
func tinyConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.End = cfg.Start.AddDate(0, 1, 0)
	cfg.RetirementDriver = cfg.Start
	cfg.SampleWindow = 10 * 24 * time.Hour
	cfg.Workload.Users = 60
	return cfg
}

func TestFacadeEndToEnd(t *testing.T) {
	study := NewStudy(tinyConfig(5))
	if len(study.Events()) == 0 || len(study.JobLog()) == 0 {
		t.Fatal("empty dataset")
	}
	var sb strings.Builder
	study.WriteReport(&sb)
	if !strings.Contains(sb.String(), "Fig 2") {
		t.Error("report did not render")
	}
	if got := len(study.CheckObservations()); got != 14 {
		t.Errorf("observations = %d, want 14", got)
	}
}

func TestFacadeSimulateAndWrap(t *testing.T) {
	res := Simulate(tinyConfig(6))
	study := StudyFromResult(res)
	if len(study.Events()) != len(res.Events) {
		t.Error("wrap changed the dataset")
	}
}

func TestFacadeConsoleRoundTrip(t *testing.T) {
	res := Simulate(tinyConfig(7))
	var buf bytes.Buffer
	if err := WriteConsoleLog(&buf, res.Events[:100]); err != nil {
		t.Fatal(err)
	}
	events, err := ParseConsoleLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 100 {
		t.Fatalf("parsed %d of 100", len(events))
	}
}

func TestFacadeCatalog(t *testing.T) {
	if len(HardwareErrorTable()) == 0 || len(SoftwareErrorTable()) == 0 {
		t.Fatal("empty catalogs")
	}
	info, ok := LookupXID(DoubleBitErrorXID)
	if !ok || !info.CrashesApp {
		t.Error("DBE lookup wrong")
	}
	if _, ok := LookupXID(12345); ok {
		t.Error("unknown code should fail lookup")
	}
	if SingleBitErrorXID.String() != "SBE" || OffTheBusXID.String() != "OTB" {
		t.Error("synthetic code names wrong")
	}
	if PageRetirementXID != 63 {
		t.Error("page retirement XID wrong")
	}
}

func TestFacadeStats(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 4, 9, 16}
	s, err := Spearman(x, y)
	if err != nil || s.Coefficient != 1 {
		t.Errorf("Spearman = %+v, %v", s, err)
	}
	p, err := Pearson(x, y)
	if err != nil || p.Coefficient >= 1 {
		t.Errorf("Pearson = %+v, %v", p, err)
	}
}

func TestFacadeWorkload(t *testing.T) {
	var params WorkloadParams = DefaultConfig().Workload
	g := NewWorkload(rand.New(rand.NewSource(1)), params)
	start := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	jobs := g.GenerateJobs(rand.New(rand.NewSource(2)), start, start.AddDate(0, 0, 7))
	if len(jobs) == 0 {
		t.Fatal("no jobs generated")
	}
}

func TestFacadeCheckpointPlanning(t *testing.T) {
	mtbf := 20 * time.Hour
	cost := 6 * time.Minute
	y := YoungInterval(mtbf, cost)
	d := DalyInterval(mtbf, cost)
	if y <= 0 || d <= y {
		t.Errorf("young %v, daly %v", y, d)
	}
	st, err := SimulateCheckpoints(10*time.Hour, y, cost, time.Minute, []time.Duration{5 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if st.Failures != 1 || st.Makespan <= 10*time.Hour {
		t.Errorf("stats = %+v", st)
	}
}

func TestFacadePrediction(t *testing.T) {
	res := Simulate(tinyConfig(8))
	incidents := FilterIncidents(res.Events, 5*time.Second)
	if len(incidents) >= len(res.Events) {
		t.Error("filtering should shrink the stream")
	}
	train, test := SplitEventsByTime(incidents, 0.6)
	m := TrainPredictor(train, DefaultPredictorConfig())
	ev := m.Evaluate(test)
	// One month of data is enough to learn the 13->43 rule.
	if len(m.Rules()) == 0 {
		t.Error("no rules learned from a month of incidents")
	}
	if ev.TargetEvents == 0 {
		t.Error("no targets in the held-out stream")
	}
}

func TestFacadeLocationTypes(t *testing.T) {
	var loc Location
	loc.Row, loc.Column, loc.Cage = 2, 3, 1
	n := loc.ID()
	var _ NodeID = n
	if loc.CName() != "c3-2c1s0n0" {
		t.Errorf("cname = %s", loc.CName())
	}
}

func TestFacadeAlerts(t *testing.T) {
	res := Simulate(tinyConfig(9))
	eng := NewAlertEngine(DefaultAlertConfig())
	eng.Run(res.Events)
	if len(eng.Alerts()) == 0 {
		t.Fatal("no alerts on a month of production")
	}
	study := StudyFromResult(res)
	if len(study.Alerts(DefaultAlertConfig())) != len(eng.Alerts()) {
		t.Error("study alert replay disagrees with direct engine")
	}
}
