// Package titanre is a synthetic reproduction of "Reliability Lessons
// Learned From GPU Experience With The Titan Supercomputer at Oak Ridge
// Leadership Computing Facility" (Tiwari et al., SC '15).
//
// The package simulates the Titan installation — 18,688 NVIDIA K20X GPUs
// across 200 cabinets, its batch workload, its calibrated fault
// processes, and its logging stack (console logs parsed by SEC rules,
// nvidia-smi InfoROM snapshots with their documented inconsistencies) —
// and provides the analysis pipeline that regenerates every figure,
// table, and observation of the paper from the synthetic field data.
//
// The five-minute tour:
//
//	cfg := titanre.DefaultConfig()
//	cfg.Seed = 42
//	study := titanre.NewStudy(cfg)         // simulate Jun'13..Feb'15
//	study.WriteReport(os.Stdout)           // every figure, every table
//	for _, oc := range study.CheckObservations() {
//	    fmt.Println(oc.Number, oc.Pass, oc.Detail)
//	}
//
// Everything is deterministic: the same Config produces byte-identical
// logs. See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package titanre

import (
	"io"
	"math/rand"
	"time"

	"titanre/internal/alert"
	"titanre/internal/analysis"
	"titanre/internal/checkpoint"
	"titanre/internal/console"
	"titanre/internal/core"
	"titanre/internal/dataset"
	"titanre/internal/faults"
	"titanre/internal/filtering"
	"titanre/internal/gpu"
	"titanre/internal/nvsmi"
	"titanre/internal/predict"
	"titanre/internal/scheduler"
	"titanre/internal/sim"
	"titanre/internal/stats"
	"titanre/internal/topology"
	"titanre/internal/workload"
	"titanre/internal/xid"
)

// Config is the full parameterization of the simulated installation.
type Config = sim.Config

// Result is the generated field dataset (console log, job log, nvidia-smi
// samples, fleet state).
type Result = sim.Result

// Study binds a dataset to the analysis pipeline; one accessor per paper
// figure.
type Study = core.Study

// ObservationCheck is the automated verdict on one of the paper's
// fourteen observations.
type ObservationCheck = core.ObservationCheck

// Event is one structured console-log record.
type Event = console.Event

// XID identifies a GPU error class (NVIDIA XID codes plus synthetic codes
// for SBE and off-the-bus events).
type XID = xid.Code

// XIDInfo is a catalog entry from the paper's Tables 1 and 2.
type XIDInfo = xid.Info

// NodeID is a dense index of one of Titan's 19,200 node slots.
type NodeID = topology.NodeID

// Location is the physical coordinate (row, column, cage, blade, node) of
// a slot.
type Location = topology.Location

// Grid is a cabinet-resolution floor map used by spatial figures.
type Grid = analysis.Grid

// Correlation is a coefficient with its p-value.
type Correlation = stats.Correlation

// MonthCount is one bar of a monthly-frequency figure.
type MonthCount = analysis.MonthCount

// CageCounts is a per-cage distribution (totals plus distinct cards).
type CageCounts = analysis.CageCounts

// RetirementTiming is the Fig. 8 retirement-after-DBE histogram.
type RetirementTiming = analysis.RetirementTiming

// SBESkew is the Fig. 14 offender-exclusion analysis.
type SBESkew = analysis.SBESkew

// UtilizationCorrelation is one row of the Figs. 16-19 result.
type UtilizationCorrelation = analysis.UtilizationCorrelation

// UserCorrelation is the Fig. 20 per-user analysis.
type UserCorrelation = analysis.UserCorrelation

// WorkloadCharacteristics is the Fig. 21 analysis.
type WorkloadCharacteristics = analysis.WorkloadCharacteristics

// JobSample is one per-batch-job nvidia-smi measurement.
type JobSample = nvsmi.JobSample

// JobRecord is one placed batch job.
type JobRecord = scheduler.Record

// CardProfile is the inherent reliability character of a GPU card.
type CardProfile = faults.CardProfile

// Structure identifies a K20X memory structure.
type Structure = gpu.Structure

// PlacementPolicy selects how the batch scheduler lays jobs out.
type PlacementPolicy = scheduler.PlacementPolicy

// Placement policies: Titan's production folded-torus order, the linear
// ablation, and Observation 4's thermal-aware cool-cages-first policy.
const (
	TorusFitPolicy     PlacementPolicy = scheduler.TorusFit
	LinearFitPolicy    PlacementPolicy = scheduler.LinearFit
	CoolFirstFitPolicy PlacementPolicy = scheduler.CoolFirstFit
)

// Commonly referenced error codes. Real NVIDIA XIDs (13, 31, 43, 48, ...)
// can be used as plain integers; these are the synthetic and headline
// codes.
const (
	SingleBitErrorXID XID = xid.SingleBitError
	OffTheBusXID      XID = xid.OffTheBus
	DoubleBitErrorXID XID = xid.DoubleBitError
	PageRetirementXID XID = xid.ECCPageRetirement
)

// DefaultConfig returns the calibration that reproduces the paper's
// shapes over the Jun'2013-Feb'2015 horizon.
func DefaultConfig() Config { return sim.DefaultConfig() }

// NewStudy simulates the configured installation and prepares the
// analysis pipeline.
func NewStudy(cfg Config) *Study { return core.New(cfg) }

// StudyFromResult wraps an existing dataset.
func StudyFromResult(res *Result) *Study { return core.FromResult(res) }

// Simulate generates the field dataset without the analysis layer.
func Simulate(cfg Config) *Result { return sim.Run(cfg) }

// HardwareErrorTable returns the paper's Table 1.
func HardwareErrorTable() []XIDInfo { return xid.HardwareTable() }

// SoftwareErrorTable returns the paper's Table 2.
func SoftwareErrorTable() []XIDInfo { return xid.SoftwareTable() }

// LookupXID returns the catalog entry for an error code.
func LookupXID(code XID) (XIDInfo, bool) { return xid.Lookup(code) }

// ParseConsoleLog parses raw console lines through the production SEC
// rule set.
func ParseConsoleLog(r io.Reader) ([]Event, error) {
	return console.NewCorrelator().ParseAll(r)
}

// WriteConsoleLog renders events as raw console lines.
func WriteConsoleLog(w io.Writer, events []Event) error {
	return console.WriteLog(w, events)
}

// FilterIncidents applies the paper's per-code time-threshold filter: an
// event is kept only when the previous kept event of the same code is at
// least window older. Five seconds collapses a job-wide error storm into
// one incident (Section 2.2).
func FilterIncidents(events []Event, window time.Duration) []Event {
	return filtering.TimeThreshold(events, window)
}

// Spearman computes the rank correlation with a t-based p-value.
func Spearman(x, y []float64) (Correlation, error) { return stats.Spearman(x, y) }

// Pearson computes the linear correlation with a t-based p-value.
func Pearson(x, y []float64) (Correlation, error) { return stats.Pearson(x, y) }

// ---- Operator alerting (package alert) ----

// Alert is one raised operational condition.
type Alert = alert.Alert

// AlertConfig tunes the streaming detectors.
type AlertConfig = alert.Config

// AlertEngine consumes console events in time order and raises alerts.
type AlertEngine = alert.Engine

// DefaultAlertConfig mirrors OLCF's practices: hot-spare pulls at two
// DBEs, burst detection on OTB/DBE, first-seen-code alerts, and the
// Observation 8 suspect-node rule.
func DefaultAlertConfig() AlertConfig { return alert.DefaultConfig() }

// NewAlertEngine builds a streaming alert engine.
func NewAlertEngine(cfg AlertConfig) *AlertEngine { return alert.NewEngine(cfg) }

// ---- Checkpoint planning (package checkpoint) ----

// CheckpointStats summarizes one simulated checkpointed execution.
type CheckpointStats = checkpoint.RunStats

// YoungInterval returns Young's optimal checkpoint interval
// sqrt(2*C*MTBF).
func YoungInterval(mtbf, cost time.Duration) time.Duration {
	return checkpoint.YoungInterval(mtbf, cost)
}

// DalyInterval returns Daly's higher-order optimal checkpoint interval.
func DalyInterval(mtbf, cost time.Duration) time.Duration {
	return checkpoint.DalyInterval(mtbf, cost)
}

// SimulateCheckpoints executes a run with the given useful work,
// checkpoint interval/cost and restart cost against a concrete failure
// trace (offsets from run start).
func SimulateCheckpoints(work, interval, cost, restart time.Duration, failures []time.Duration) (CheckpointStats, error) {
	return checkpoint.Simulate(work, interval, cost, restart, failures)
}

// ---- Failure prediction (package predict) ----

// Predictor is a precursor-rule failure-prediction model.
type Predictor = predict.Model

// PredictorConfig controls training and evaluation of a Predictor.
type PredictorConfig = predict.Config

// PredictionRule is one learned precursor relation.
type PredictionRule = predict.Rule

// PredictionEval summarizes held-out predictor performance.
type PredictionEval = predict.Evaluation

// DefaultPredictorConfig targets crash-causing driver follow-ons with a
// ten-minute lead window.
func DefaultPredictorConfig() PredictorConfig { return predict.DefaultConfig() }

// TrainPredictor learns precursor rules from a time-ordered event stream.
func TrainPredictor(events []Event, cfg PredictorConfig) *Predictor {
	return predict.Train(events, cfg)
}

// SplitEventsByTime partitions a stream at a fraction of its span for
// train/test evaluation.
func SplitEventsByTime(events []Event, frac float64) (train, test []Event) {
	return predict.SplitByTime(events, frac)
}

// PrecursorWarning is one online precursor warning issued by a Warner.
type PrecursorWarning = predict.Warning

// PrecursorWarner feeds events one at a time through a trained
// predictor and issues warnings online — the streaming counterpart of
// held-out evaluation, and what titand serves at /warnings.
type PrecursorWarner = predict.Warner

// NewPrecursorWarner arms a trained predictor's rules for streaming use.
func NewPrecursorWarner(m *Predictor) *PrecursorWarner { return predict.NewWarner(m) }

// WriteDataset stores a result's artifacts (console.log, jobs.tsv,
// samples.tsv, snapshot.tsv) into a directory.
func WriteDataset(dir string, res *Result) error { return dataset.Write(dir, res) }

// LoadDataset reads a dataset directory back; cfg supplies the
// operational context the flat files cannot carry (epochs, propagation
// window), and zero Start/End are inferred from the data.
func LoadDataset(dir string, cfg Config) (*Result, error) { return dataset.Load(dir, cfg) }

// NewWorkload draws the synthetic user population and job stream used by
// the simulator, exposed for custom experiments.
func NewWorkload(rng *rand.Rand, p workload.Params) *workload.Generator {
	return workload.NewGenerator(rng, p)
}

// WorkloadParams re-exports the workload calibration type.
type WorkloadParams = workload.Params
